//! Fleet-level observability: the supervisor/router's own counters
//! plus shard-aware aggregation of the children's `/metrics` exports.
//!
//! `GET /metrics` on the fleet front answers with one merged
//! Prometheus-style exposition: the `sysunc_fleet_*` series first
//! (routing, restarts, probe failures), then every child series summed
//! across shards. Summing is correct for the serve exposition because
//! all its series are monotone counters — including histogram buckets,
//! whose per-`le` cumulative counts add shard-wise.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters the fleet layer maintains itself, per shard where the
/// distinction matters.
#[derive(Debug)]
pub struct FleetMetrics {
    /// Requests placed on each shard (indexed by slot).
    routed: Vec<AtomicU64>,
    /// Times each shard was (re)spawned after its initial start.
    restarts: Vec<AtomicU64>,
    /// Health probes that failed (timeout, refused, non-200).
    probe_failures: AtomicU64,
    /// Forwarding attempts retried after a backend transport error.
    forward_retries: AtomicU64,
    /// Requests answered 503 because no shard could take them in time.
    unrouted: AtomicU64,
}

impl FleetMetrics {
    /// A zeroed registry for `shards` slots.
    pub fn new(shards: usize) -> Self {
        Self {
            routed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            restarts: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            probe_failures: AtomicU64::new(0),
            forward_retries: AtomicU64::new(0),
            unrouted: AtomicU64::new(0),
        }
    }

    /// Records one request placed on `slot`.
    pub fn routed(&self, slot: usize) {
        if let Some(c) = self.routed.get(slot) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one restart of `slot`.
    pub fn restarted(&self, slot: usize) {
        if let Some(c) = self.restarts.get(slot) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one failed health probe.
    pub fn probe_failed(&self) {
        self.probe_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one forwarding retry after a backend transport error.
    pub fn forward_retried(&self) {
        self.forward_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request no shard could take before its deadline.
    pub fn unroutable(&self) {
        self.unrouted.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests placed on `slot` so far.
    pub fn routed_count(&self, slot: usize) -> u64 {
        self.routed.get(slot).map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Restarts of `slot` so far.
    pub fn restart_count(&self, slot: usize) -> u64 {
        self.restarts.get(slot).map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Restarts across all shards.
    pub fn total_restarts(&self) -> u64 {
        self.restarts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Failed health probes so far.
    pub fn probe_failure_count(&self) -> u64 {
        self.probe_failures.load(Ordering::Relaxed)
    }

    /// Forwarding retries so far.
    pub fn forward_retry_count(&self) -> u64 {
        self.forward_retries.load(Ordering::Relaxed)
    }

    /// Requests answered 503 for lack of a healthy shard so far.
    pub fn unrouted_count(&self) -> u64 {
        self.unrouted.load(Ordering::Relaxed)
    }

    /// Renders the `sysunc_fleet_*` exposition block.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(
            "# HELP sysunc_fleet_requests_routed_total Requests placed, by shard.\n\
             # TYPE sysunc_fleet_requests_routed_total counter\n",
        );
        for (slot, c) in self.routed.iter().enumerate() {
            out.push_str(&format!(
                "sysunc_fleet_requests_routed_total{{shard=\"{slot}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP sysunc_fleet_restarts_total Shard processes respawned, by shard.\n\
             # TYPE sysunc_fleet_restarts_total counter\n",
        );
        for (slot, c) in self.restarts.iter().enumerate() {
            out.push_str(&format!(
                "sysunc_fleet_restarts_total{{shard=\"{slot}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }
        let scalar = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        scalar(
            &mut out,
            "sysunc_fleet_probe_failures_total",
            "Health probes that failed.",
            self.probe_failure_count(),
        );
        scalar(
            &mut out,
            "sysunc_fleet_forward_retries_total",
            "Forwarding attempts retried after a backend error.",
            self.forward_retry_count(),
        );
        scalar(
            &mut out,
            "sysunc_fleet_unrouted_total",
            "Requests no healthy shard could take before the deadline.",
            self.unrouted_count(),
        );
        out
    }
}

/// One metric family of a text exposition: its comment header block
/// and the value lines that follow it, keyed for merging.
struct Family {
    comments: Vec<String>,
    /// Series keys (`name{labels}`) in first-appearance order.
    order: Vec<String>,
    /// Summed values; `None` marks an unparseable value kept verbatim.
    values: HashMap<String, Option<u64>>,
    raw: HashMap<String, String>,
}

/// Sums several Prometheus-style text expositions series-by-series:
/// lines with the same `name{labels}` key add up, families keep their
/// `# HELP`/`# TYPE` headers, and series present in only some inputs
/// are carried through. Works for the serve exposition because every
/// series there is a monotone counter (histogram bucket counts sum
/// correctly per `le` bound across shards).
pub fn merge_expositions(texts: &[String]) -> String {
    let mut families: Vec<Family> = Vec::new();
    let mut family_index: HashMap<String, usize> = HashMap::new();
    for text in texts {
        let mut pending_comments: Vec<String> = Vec::new();
        let mut current: Option<usize> = None;
        for line in text.lines() {
            if line.starts_with('#') {
                pending_comments.push(line.to_string());
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let (key, value) = match line.rsplit_once(' ') {
                Some((key, value)) => (key.to_string(), value.parse::<u64>().ok()),
                None => (line.to_string(), None),
            };
            // The family name is the series name without labels.
            let name = key.split('{').next().unwrap_or(&key).to_string();
            if !pending_comments.is_empty() {
                let idx = *family_index.entry(name.clone()).or_insert_with(|| {
                    families.push(Family {
                        comments: std::mem::take(&mut pending_comments),
                        order: Vec::new(),
                        values: HashMap::new(),
                        raw: HashMap::new(),
                    });
                    families.len() - 1
                });
                pending_comments.clear();
                current = Some(idx);
            } else if let Some(&idx) = family_index.get(&name) {
                current = Some(idx);
            }
            let idx = match current {
                Some(idx) => idx,
                None => {
                    // A headerless family: open one with no comments.
                    let idx = *family_index.entry(name.clone()).or_insert_with(|| {
                        families.push(Family {
                            comments: Vec::new(),
                            order: Vec::new(),
                            values: HashMap::new(),
                            raw: HashMap::new(),
                        });
                        families.len() - 1
                    });
                    current = Some(idx);
                    idx
                }
            };
            let Some(family) = families.get_mut(idx) else { continue };
            match family.values.get_mut(&key) {
                Some(Some(total)) => match value {
                    Some(v) => *total += v,
                    None => {
                        family.values.insert(key, None);
                    }
                },
                Some(None) => {}
                None => {
                    family.order.push(key.clone());
                    family.raw.insert(key.clone(), line.to_string());
                    family.values.insert(key, value);
                }
            }
        }
    }
    let mut out = String::new();
    for family in &families {
        for comment in &family.comments {
            out.push_str(comment);
            out.push('\n');
        }
        for key in &family.order {
            match family.values.get(key) {
                Some(Some(total)) => out.push_str(&format!("{key} {total}\n")),
                _ => {
                    if let Some(raw) = family.raw.get(key) {
                        out.push_str(raw);
                        out.push('\n');
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_counters_accumulate_and_render() {
        let m = FleetMetrics::new(2);
        m.routed(0);
        m.routed(0);
        m.routed(1);
        m.restarted(1);
        m.probe_failed();
        m.forward_retried();
        m.unroutable();
        assert_eq!(m.routed_count(0), 2);
        assert_eq!(m.routed_count(1), 1);
        assert_eq!(m.restart_count(1), 1);
        assert_eq!(m.total_restarts(), 1);
        let text = m.render_text();
        assert!(text.contains("sysunc_fleet_requests_routed_total{shard=\"0\"} 2"));
        assert!(text.contains("sysunc_fleet_restarts_total{shard=\"1\"} 1"));
        assert!(text.contains("sysunc_fleet_probe_failures_total 1"));
        assert!(text.contains("sysunc_fleet_unrouted_total 1"));
        // Out-of-range slots are ignored, never a panic.
        m.routed(7);
        m.restarted(7);
        assert_eq!(m.routed_count(7), 0);
    }

    #[test]
    fn merging_sums_series_and_keeps_family_headers() {
        let a = "# HELP x_total Things.\n# TYPE x_total counter\n\
                 x_total{route=\"/a\"} 3\nx_total{route=\"/b\"} 1\n\
                 # HELP y_total Others.\n# TYPE y_total counter\ny_total 10\n"
            .to_string();
        let b = "# HELP x_total Things.\n# TYPE x_total counter\n\
                 x_total{route=\"/a\"} 4\nx_total{route=\"/c\"} 2\n\
                 # HELP y_total Others.\n# TYPE y_total counter\ny_total 5\n"
            .to_string();
        let merged = merge_expositions(&[a, b]);
        assert!(merged.contains("x_total{route=\"/a\"} 7"), "{merged}");
        assert!(merged.contains("x_total{route=\"/b\"} 1"));
        assert!(merged.contains("x_total{route=\"/c\"} 2"), "only-in-b carried through");
        assert!(merged.contains("y_total 15"));
        // Exactly one header block per family.
        assert_eq!(merged.matches("# HELP x_total").count(), 1);
        assert_eq!(merged.matches("# TYPE y_total").count(), 1);
        // Family grouping: the /c series sits under the x_total block,
        // before y_total's header.
        let c_pos = merged.find("route=\"/c\"").expect("present");
        let y_pos = merged.find("# HELP y_total").expect("present");
        assert!(c_pos < y_pos, "series stay grouped under their family header");
    }

    #[test]
    fn merging_histogram_buckets_adds_per_le_counts() {
        let a = "# TYPE h histogram\nh_bucket{le=\"100\"} 2\nh_bucket{le=\"+Inf\"} 5\n\
                 h_sum 420\nh_count 5\n"
            .to_string();
        let b = "# TYPE h histogram\nh_bucket{le=\"100\"} 1\nh_bucket{le=\"+Inf\"} 2\n\
                 h_sum 80\nh_count 2\n"
            .to_string();
        let merged = merge_expositions(&[a, b]);
        assert!(merged.contains("h_bucket{le=\"100\"} 3"), "{merged}");
        assert!(merged.contains("h_bucket{le=\"+Inf\"} 7"));
        assert!(merged.contains("h_sum 500"));
        assert!(merged.contains("h_count 7"));
    }

    #[test]
    fn merging_one_exposition_is_identity_modulo_blank_lines() {
        let a = "# HELP x_total T.\n# TYPE x_total counter\nx_total 9\n".to_string();
        assert_eq!(merge_expositions(&[a.clone()]), a);
        assert_eq!(merge_expositions(&[]), "");
    }
}
