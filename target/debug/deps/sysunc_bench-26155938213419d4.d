/root/repo/target/debug/deps/sysunc_bench-26155938213419d4.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libsysunc_bench-26155938213419d4.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
