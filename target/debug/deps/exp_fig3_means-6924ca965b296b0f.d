/root/repo/target/debug/deps/exp_fig3_means-6924ca965b296b0f.d: crates/bench/src/bin/exp_fig3_means.rs

/root/repo/target/debug/deps/exp_fig3_means-6924ca965b296b0f: crates/bench/src/bin/exp_fig3_means.rs

crates/bench/src/bin/exp_fig3_means.rs:
