/root/repo/target/release/deps/bn_inference-b6f2f5c0b5c82279.d: crates/bench/benches/bn_inference.rs

/root/repo/target/release/deps/bn_inference-b6f2f5c0b5c82279: crates/bench/benches/bn_inference.rs

crates/bench/benches/bn_inference.rs:
