//! # sysunc-orbital — the two-planet universe as a physical substrate
//!
//! A planar N-body gravity simulator built for the `sysunc` toolkit
//! (reproduction of Gansch & Adee, *System Theoretic View on
//! Uncertainties*, DATE 2020). The paper's running example (Fig. 2,
//! Secs. II-III) is "a reality where only two planets exist"; this crate
//! *is* that reality, so the paper's three uncertainty types become
//! executable experiments:
//!
//! - **Deterministic model A**: Newton's laws integrated by
//!   [`Integrator`] (symplectic Euler, velocity Verlet, RK4) over
//!   [`NBodySystem`]s with energy/momentum diagnostics.
//! - **Probabilistic model B**: repeated noisy observation through an
//!   [`ObservationChannel`] into an [`OccupancyGrid`] — the frequentist
//!   spatial distribution whose distance-to-truth is *epistemic* and whose
//!   converged spread is *aleatory*.
//! - **Epistemic model error**: heterogeneous bodies via
//!   [`Body::with_mascon_ring`]; a point-mass model of a lumpy body is
//!   inaccurate in a way more mascons monotonically reduce (Sec. III-B).
//! - **Ontological surprise**: [`NBodySystem::inject_third_planet`] plus
//!   the [`SurpriseMonitor`] reproduce Sec. III-C — prediction log-loss
//!   spikes that only model *reformulation* (a 3-body model) removes.
//!
//! ```
//! use sysunc_orbital::{Integrator, NBodySystem};
//!
//! let mut sys = NBodySystem::two_planets(1.0, 0.5, 2.0)?;
//! let e0 = sys.total_energy();
//! Integrator::VelocityVerlet.propagate(&mut sys, 0.001, 10_000);
//! assert!(((sys.total_energy() - e0) / e0).abs() < 1e-6);
//! # Ok::<(), sysunc_orbital::OrbitalError>(())
//! ```

mod error;
mod integrator;
mod kepler;
mod model;
mod observe;
mod system;
mod vec2;

pub use error::{OrbitalError, Result};
pub use integrator::Integrator;
pub use kepler::KeplerOrbit;
pub use model::{TwoBodyEnergyModel, TwoBodyPeriodModel};
pub use observe::{ObservationChannel, OccupancyGrid, SurpriseMonitor};
pub use system::{Body, Mascon, NBodySystem};
pub use vec2::Vec2;
