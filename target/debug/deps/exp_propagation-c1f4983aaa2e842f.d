/root/repo/target/debug/deps/exp_propagation-c1f4983aaa2e842f.d: crates/bench/src/bin/exp_propagation.rs

/root/repo/target/debug/deps/libexp_propagation-c1f4983aaa2e842f.rmeta: crates/bench/src/bin/exp_propagation.rs

crates/bench/src/bin/exp_propagation.rs:
