//! Fault tree → Bayesian network conversion (paper Sec. V-B: BNs subsume
//! FTA and "allow hierarchical refinement analogous to FTA").
//!
//! Basic events become root nodes with a Bernoulli prior; gates become
//! deterministic nodes whose CPTs encode the boolean function. Posterior
//! queries on the resulting BN answer diagnostic questions classic FTA
//! cannot (e.g. `P(basic event | top occurred)`).

use crate::error::{FtaError, Result};
use crate::tree::{FaultTree, GateKind, NodeRef};
use sysunc_bayesnet::BayesNet;

/// Result of converting a fault tree to a Bayesian network.
#[derive(Debug, Clone)]
pub struct ConvertedTree {
    /// The Bayesian network. Every node has states `["ok", "failed"]`.
    pub network: BayesNet,
    /// BN node id for each basic event (by basic-event index).
    pub basic_ids: Vec<usize>,
    /// BN node id for each gate (by gate index).
    pub gate_ids: Vec<usize>,
    /// BN node id of the top event.
    pub top_id: usize,
}

/// Converts a static fault tree into an equivalent Bayesian network.
///
/// # Errors
///
/// Returns [`FtaError::NoTopEvent`] when no top is set; internal BN
/// construction errors surface as [`FtaError::InvalidGate`].
///
/// # Examples
///
/// ```
/// use sysunc_fta::{fault_tree_to_bayes_net, FaultTree, GateKind};
/// let mut ft = FaultTree::new();
/// let a = ft.add_basic_event("a", 0.01)?;
/// let b = ft.add_basic_event("b", 0.02)?;
/// let top = ft.add_gate("top", GateKind::Or, vec![a, b])?;
/// ft.set_top(top)?;
/// let conv = fault_tree_to_bayes_net(&ft)?;
/// let p_top = conv.network.marginal("top", &[])?[1];
/// assert!((p_top - ft.top_probability_exact()?).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fault_tree_to_bayes_net(tree: &FaultTree) -> Result<ConvertedTree> {
    let top = tree.top().ok_or(FtaError::NoTopEvent)?;
    let mut bn = BayesNet::new();
    let mut basic_ids = Vec::with_capacity(tree.basic_events().len());
    for be in tree.basic_events() {
        let id = bn
            .add_root(be.name.clone(), vec!["ok", "failed"], vec![
                1.0 - be.probability,
                be.probability,
            ])
            .map_err(|e| FtaError::InvalidGate(e.to_string()))?;
        basic_ids.push(id);
    }
    let mut gate_ids = Vec::with_capacity(tree.gates().len());
    for gate in tree.gates() {
        let parents: Vec<usize> = gate
            .inputs
            .iter()
            .map(|&r| match r {
                NodeRef::Basic(i) => basic_ids[i],
                NodeRef::Gate(g) => gate_ids[g],
            })
            .collect();
        // Deterministic CPT: one row per parent combination (last parent
        // fastest), each row [P(ok), P(failed)].
        let rows = 1usize << parents.len();
        let mut cpt = Vec::with_capacity(rows);
        for row in 0..rows {
            // Bit j of `row` is the state of parent j — with the LAST
            // parent iterating fastest, parent j has weight
            // 2^(n-1-j).
            let n = parents.len();
            let failed_count = (0..n)
                .filter(|&j| (row >> (n - 1 - j)) & 1 == 1)
                .count();
            let fails = match gate.kind {
                GateKind::And => failed_count == n,
                GateKind::Or => failed_count >= 1,
                GateKind::KOfN(k) => failed_count >= k,
            };
            cpt.push(if fails { vec![0.0, 1.0] } else { vec![1.0, 0.0] });
        }
        let id = bn
            .add_node(gate.name.clone(), vec!["ok", "failed"], parents, cpt)
            .map_err(|e| FtaError::InvalidGate(e.to_string()))?;
        gate_ids.push(id);
    }
    let top_id = match top {
        NodeRef::Basic(i) => basic_ids[i],
        NodeRef::Gate(g) => gate_ids[g],
    };
    Ok(ConvertedTree { network: bn, basic_ids, gate_ids, top_id })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> FaultTree {
        let mut ft = FaultTree::new();
        let a = ft.add_basic_event("a", 0.1).unwrap();
        let b = ft.add_basic_event("b", 0.2).unwrap();
        let c = ft.add_basic_event("c", 0.05).unwrap();
        let g1 = ft.add_gate("ab", GateKind::And, vec![a, b]).unwrap();
        let top = ft.add_gate("top", GateKind::Or, vec![g1, c]).unwrap();
        ft.set_top(top).unwrap();
        ft
    }

    #[test]
    fn converted_bn_matches_exact_probability() {
        let ft = sample_tree();
        let conv = fault_tree_to_bayes_net(&ft).unwrap();
        let p_bn = conv.network.marginal("top", &[]).unwrap()[1];
        let p_ft = ft.top_probability_exact().unwrap();
        assert!((p_bn - p_ft).abs() < 1e-12);

        // also for a voting gate with repeated structure
        let mut ft2 = FaultTree::new();
        let events: Vec<NodeRef> =
            (0..3).map(|i| ft2.add_basic_event(format!("e{i}"), 0.2).unwrap()).collect();
        let vote = ft2.add_gate("2oo3", GateKind::KOfN(2), events).unwrap();
        ft2.set_top(vote).unwrap();
        let conv2 = fault_tree_to_bayes_net(&ft2).unwrap();
        let p2 = conv2.network.marginal("2oo3", &[]).unwrap()[1];
        assert!((p2 - ft2.top_probability_exact().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn diagnostic_posterior_beyond_classic_fta() {
        let ft = sample_tree();
        let conv = fault_tree_to_bayes_net(&ft).unwrap();
        // P(c failed | top failed): diagnosis that FTA cannot express.
        let post = conv.network.marginal("c", &[("top", "failed")]).unwrap()[1];
        let prior = 0.05;
        assert!(post > prior, "observing the top failure must raise P(c): {post}");
        // Explaining away: also observing that the AND branch failed
        // lowers P(c failed) back down.
        let post2 = conv
            .network
            .marginal("c", &[("top", "failed"), ("ab", "failed")])
            .unwrap()[1];
        assert!(post2 < post);
    }

    #[test]
    fn conversion_requires_top() {
        let mut ft = FaultTree::new();
        ft.add_basic_event("a", 0.1).unwrap();
        assert!(matches!(fault_tree_to_bayes_net(&ft), Err(FtaError::NoTopEvent)));
    }
}
