/root/repo/target/debug/deps/exp_tolerance-d8441bbeb2b87fc6.d: crates/bench/src/bin/exp_tolerance.rs

/root/repo/target/debug/deps/exp_tolerance-d8441bbeb2b87fc6: crates/bench/src/bin/exp_tolerance.rs

crates/bench/src/bin/exp_tolerance.rs:
