/root/repo/target/debug/deps/sysunc_bench-3b06dc6878007b28.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/sysunc_bench-3b06dc6878007b28: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
