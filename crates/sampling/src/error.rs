//! Error types for the sampling engines.

use std::fmt;

/// Errors from design generation and propagation.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingError {
    /// A design parameter was invalid (zero points, unsupported dimension,
    /// ...). The payload describes it.
    InvalidDesign(String),
    /// Inputs and design dimension disagree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::InvalidDesign(msg) => write!(f, "invalid design: {msg}"),
            SamplingError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for SamplingError {}

/// Convenience result alias for the sampling crate.
pub type Result<T> = std::result::Result<T, SamplingError>;
