//! Error types for the linear-algebra substrate.

use std::fmt;

/// Errors from matrix construction, decomposition and quadrature.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// Inputs disagree in shape; the payload describes the mismatch.
    DimensionMismatch(String),
    /// A square-matrix operation received a rectangular matrix.
    NotSquare,
    /// Cholesky factorization met a non-positive pivot.
    NotPositiveDefinite,
    /// The matrix is singular to working precision.
    Singular,
    /// An iterative scheme did not converge; the payload names it.
    ConvergenceFailure(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            AlgebraError::NotSquare => write!(f, "matrix is not square"),
            AlgebraError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            AlgebraError::Singular => write!(f, "matrix is singular to working precision"),
            AlgebraError::ConvergenceFailure(what) => write!(f, "{what} failed to converge"),
        }
    }
}

impl std::error::Error for AlgebraError {}

/// Convenience result alias for the algebra crate.
pub type Result<T> = std::result::Result<T, AlgebraError>;
