#!/usr/bin/env bash
# Tier-1 gate for the sysunc workspace. Everything runs --offline: the
# workspace has zero external dependencies by policy (enforced by
# sysunc-tidy's `manifest` rule), so no step may touch the network.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --offline

echo "== tests =="
cargo test -q --offline

echo "== static-analysis gate =="
cargo run -q --offline -p sysunc-tidy

echo "== engine-layer examples (release) =="
cargo run -q --release --offline --example propagation_methods
cargo run -q --release --offline --example strategy_workflow
