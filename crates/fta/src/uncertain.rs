//! Fault tree quantification under epistemic uncertainty: interval and
//! fuzzy basic-event probabilities (paper Sec. V, references \[34\], \[35\]).
//!
//! Quantification recurses over the tree structure with the independence
//! formulas `AND: Π pᵢ` and `OR: 1 - Π (1 - pᵢ)` lifted to the uncertain
//! number type. For trees *without repeated events* this is exact; with
//! repeated events it remains a conservative enclosure for intervals.

use crate::error::{FtaError, Result};
use crate::tree::{FaultTree, GateKind, NodeRef};
use sysunc_evidence::{FuzzyNumber, Interval};

/// An algebra of "uncertain probabilities" that the structure recursion is
/// generic over.
pub trait ProbabilityAlgebra: Clone {
    /// The multiplicative identity (probability one).
    fn one() -> Self;

    /// Probability of a conjunction of independent events.
    fn and(&self, other: &Self) -> Self;

    /// Complement `1 - p`.
    fn complement(&self) -> Self;

    /// Probability of a disjunction of independent events,
    /// `1 - (1-p)(1-q)` by default.
    fn or(&self, other: &Self) -> Self {
        self.complement().and(&other.complement()).complement()
    }

    /// Probability of a union of *disjoint* events, `p + q`.
    fn add_disjoint(&self, other: &Self) -> Self;
}

impl ProbabilityAlgebra for f64 {
    fn one() -> Self {
        1.0
    }

    fn and(&self, other: &Self) -> Self {
        self * other
    }

    fn complement(&self) -> Self {
        1.0 - self
    }

    fn add_disjoint(&self, other: &Self) -> Self {
        self + other
    }
}

impl ProbabilityAlgebra for Interval {
    fn one() -> Self {
        Interval::degenerate(1.0)
    }

    fn and(&self, other: &Self) -> Self {
        (*self * *other).clamp_unit()
    }

    fn complement(&self) -> Self {
        self.complement_probability().clamp_unit()
    }

    fn add_disjoint(&self, other: &Self) -> Self {
        (*self + *other).clamp_unit()
    }
}

impl ProbabilityAlgebra for FuzzyNumber {
    fn one() -> Self {
        FuzzyNumber::crisp(1.0)
    }

    fn and(&self, other: &Self) -> Self {
        self.mul(other)
    }

    fn complement(&self) -> Self {
        self.complement_probability()
    }

    fn add_disjoint(&self, other: &Self) -> Self {
        self.add(other)
    }
}

/// Quantifies the top event with basic-event probabilities drawn from any
/// [`ProbabilityAlgebra`] (crisp `f64`, epistemic [`Interval`], fuzzy
/// [`FuzzyNumber`]).
///
/// `probabilities` must supply one value per basic event, in index order.
///
/// # Errors
///
/// Returns [`FtaError::NoTopEvent`] when no top is set and
/// [`FtaError::InvalidEvent`] for a wrong probability count.
///
/// # Examples
///
/// ```
/// use sysunc_evidence::Interval;
/// use sysunc_fta::{quantify_with, FaultTree, GateKind};
/// let mut ft = FaultTree::new();
/// let a = ft.add_basic_event("a", 0.1)?;
/// let b = ft.add_basic_event("b", 0.2)?;
/// let top = ft.add_gate("top", GateKind::Or, vec![a, b])?;
/// ft.set_top(top)?;
/// // Epistemic bounds on the event probabilities propagate to the top.
/// let bounds = quantify_with(&ft, &[
///     Interval::new(0.05, 0.15)?,
///     Interval::new(0.1, 0.3)?,
/// ])?;
/// assert!(bounds.lo() > 0.14 && bounds.hi() < 0.41);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn quantify_with<P: ProbabilityAlgebra>(tree: &FaultTree, probabilities: &[P]) -> Result<P> {
    if probabilities.len() != tree.basic_events().len() {
        return Err(FtaError::InvalidEvent(format!(
            "expected {} probabilities, got {}",
            tree.basic_events().len(),
            probabilities.len()
        )));
    }
    let top = tree.top().ok_or(FtaError::NoTopEvent)?;
    Ok(eval(tree, top, probabilities))
}

fn eval<P: ProbabilityAlgebra>(tree: &FaultTree, node: NodeRef, probs: &[P]) -> P {
    match node {
        NodeRef::Basic(i) => probs[i].clone(),
        NodeRef::Gate(g) => {
            let gate = &tree.gates()[g];
            let inputs: Vec<P> = gate.inputs.iter().map(|&c| eval(tree, c, probs)).collect();
            match gate.kind {
                GateKind::And => {
                    inputs.iter().fold(P::one(), |acc, p| acc.and(p))
                }
                GateKind::Or => inputs
                    .iter()
                    .fold(P::one(), |acc, p| acc.and(&p.complement()))
                    .complement(),
                GateKind::KOfN(k) => k_of_n(&inputs, k),
            }
        }
    }
}

/// Exact k-of-n probability for independent inputs via dynamic programming
/// over the count distribution, lifted to the algebra.
fn k_of_n<P: ProbabilityAlgebra>(inputs: &[P], k: usize) -> P {
    // dp[j] = "probability that exactly j of the first i inputs failed".
    let mut dp: Vec<P> = vec![P::one()];
    for p in inputs {
        let q = p.complement();
        let mut next: Vec<P> = Vec::with_capacity(dp.len() + 1);
        for j in 0..=dp.len() {
            // next[j] = dp[j] * q + dp[j-1] * p  (summed via the or-free
            // additive structure; for intervals/fuzzy this stays a valid
            // enclosure because the two contributions are disjoint events).
            let stay = if j < dp.len() { Some(dp[j].and(&q)) } else { None };
            let advance = if j > 0 { Some(dp[j - 1].and(p)) } else { None };
            next.push(match (stay, advance) {
                (Some(s), Some(a)) => s.add_disjoint(&a),
                (Some(s), None) => s,
                (None, Some(a)) => a,
                (None, None) => unreachable!("one branch always applies"),
            });
        }
        dp = next;
    }
    // Sum of dp[k..].
    let mut acc: Option<P> = None;
    for p in &dp[k.min(dp.len())..] {
        acc = Some(match acc {
            Some(a) => a.add_disjoint(p),
            None => p.clone(),
        });
    }
    acc.unwrap_or_else(|| P::one().complement())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> FaultTree {
        let mut ft = FaultTree::new();
        let a = ft.add_basic_event("a", 0.1).unwrap();
        let b = ft.add_basic_event("b", 0.2).unwrap();
        let c = ft.add_basic_event("c", 0.05).unwrap();
        let g1 = ft.add_gate("ab", GateKind::And, vec![a, b]).unwrap();
        let top = ft.add_gate("top", GateKind::Or, vec![g1, c]).unwrap();
        ft.set_top(top).unwrap();
        ft
    }

    #[test]
    fn crisp_quantification_matches_exact_for_tree_without_repeats() {
        let ft = sample_tree();
        let probs: Vec<f64> = ft.basic_events().iter().map(|b| b.probability).collect();
        let structural = quantify_with(&ft, &probs).unwrap();
        let exact = ft.top_probability_exact().unwrap();
        assert!((structural - exact).abs() < 1e-12, "{structural} vs {exact}");
    }

    #[test]
    fn interval_quantification_encloses_crisp() {
        let ft = sample_tree();
        let crisp: Vec<f64> = ft.basic_events().iter().map(|b| b.probability).collect();
        let exact = quantify_with(&ft, &crisp).unwrap();
        let intervals: Vec<Interval> = crisp
            .iter()
            .map(|&p| Interval::new(p * 0.5, (p * 1.5).min(1.0)).unwrap())
            .collect();
        let bounds = quantify_with(&ft, &intervals).unwrap();
        assert!(bounds.contains(exact), "{bounds} should contain {exact}");
        // Degenerate intervals recover the crisp value.
        let degenerate: Vec<Interval> = crisp.iter().map(|&p| Interval::degenerate(p)).collect();
        let tight = quantify_with(&ft, &degenerate).unwrap();
        assert!((tight.lo() - exact).abs() < 1e-12);
        assert!((tight.hi() - exact).abs() < 1e-12);
    }

    #[test]
    fn fuzzy_quantification_tanaka_style() {
        let ft = sample_tree();
        let fuzzies: Vec<FuzzyNumber> = ft
            .basic_events()
            .iter()
            .map(|b| {
                FuzzyNumber::triangular(
                    b.probability * 0.5,
                    b.probability,
                    (b.probability * 2.0).min(1.0),
                )
                .unwrap()
            })
            .collect();
        let top = quantify_with(&ft, &fuzzies).unwrap();
        // The core (α = 1) must match the crisp quantification.
        let crisp: Vec<f64> = ft.basic_events().iter().map(|b| b.probability).collect();
        let exact = quantify_with(&ft, &crisp).unwrap();
        assert!((top.core().midpoint() - exact).abs() < 1e-12);
        // Support must enclose the core and be genuinely wider.
        assert!(top.support().width() > 0.0);
        assert!(top.support().contains(exact));
    }

    #[test]
    fn kofn_crisp_quantification() {
        let mut ft = FaultTree::new();
        let p = 0.1;
        let events: Vec<NodeRef> =
            (0..3).map(|i| ft.add_basic_event(format!("e{i}"), p).unwrap()).collect();
        let vote = ft.add_gate("2oo3", GateKind::KOfN(2), events).unwrap();
        ft.set_top(vote).unwrap();
        let structural = quantify_with(&ft, &[p, p, p]).unwrap();
        let exact = ft.top_probability_exact().unwrap();
        assert!((structural - exact).abs() < 1e-12, "{structural} vs {exact}");
    }

    #[test]
    fn wrong_probability_count_errors() {
        let ft = sample_tree();
        assert!(quantify_with(&ft, &[0.1, 0.2]).is_err());
    }

    #[test]
    fn interval_widths_grow_with_epistemic_input_width() {
        let ft = sample_tree();
        let narrow: Vec<Interval> = ft
            .basic_events()
            .iter()
            .map(|b| Interval::new(b.probability * 0.9, b.probability * 1.1).unwrap())
            .collect();
        let wide: Vec<Interval> = ft
            .basic_events()
            .iter()
            .map(|b| Interval::new(b.probability * 0.5, b.probability * 2.0).unwrap())
            .collect();
        let n = quantify_with(&ft, &narrow).unwrap();
        let w = quantify_with(&ft, &wide).unwrap();
        assert!(w.width() > n.width());
    }
}
