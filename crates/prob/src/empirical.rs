//! Empirical (data-driven) distributions: ECDFs, histograms and kernel
//! density estimates.
//!
//! These are the machinery behind the paper's *frequentist* model B of
//! Fig. 2: "build a probabilistic model by repeated observation of the
//! positions". The gap between the empirical estimate and the underlying
//! distribution is the **epistemic** uncertainty of the probabilistic model
//! (Sec. III-B), which shrinks as observations accumulate.

use crate::error::{ProbError, Result};
use crate::stats::SortedSample;

/// Empirical cumulative distribution function over a sample.
///
/// Sorting and order-statistic queries delegate to
/// [`SortedSample`], the workspace's single sort-based quantile routine.
///
/// # Examples
///
/// ```
/// use sysunc_prob::empirical::Ecdf;
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0])?;
/// assert!((e.cdf(2.5) - 0.5).abs() < 1e-15);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sample: SortedSample,
}

impl Ecdf {
    /// Builds an ECDF from a sample (sorted internally).
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::EmptyData`] on empty input or
    /// [`ProbError::InvalidParameter`] if the sample contains NaN.
    pub fn new(sample: Vec<f64>) -> Result<Self> {
        Ok(Self { sample: SortedSample::from_vec(sample)? })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// Whether the sample is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// Empirical CDF value `#{x_i <= x} / n`.
    /// Range: `[0, 1]`, a step function jumping `1/n` at each sample.
    pub fn cdf(&self, x: f64) -> f64 {
        let sorted = self.sample.sorted();
        let k = sorted.partition_point(|&v| v <= x);
        k as f64 / sorted.len() as f64
    }

    /// Empirical quantile (inverse ECDF): the smallest order statistic with
    /// CDF at least `p` ([`SortedSample::lower`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "Ecdf::quantile: p in [0,1], got {p}");
        self.sample.lower(p)
    }

    /// Underlying sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        self.sample.sorted()
    }

    /// Kolmogorov–Smirnov distance `sup |F_n - F|` against a reference CDF.
    pub fn ks_distance<F: Fn(f64) -> f64>(&self, reference_cdf: F) -> f64 {
        let sorted = self.sample.sorted();
        let n = sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in sorted.iter().enumerate() {
            let f = reference_cdf(x);
            let upper = (i + 1) as f64 / n - f;
            let lower = f - i as f64 / n;
            d = d.max(upper.max(lower));
        }
        d
    }
}

/// Fixed-width histogram over a bounded range, usable as a density
/// estimate.
///
/// # Examples
///
/// ```
/// use sysunc_prob::empirical::Histogram;
/// let mut h = Histogram::new(0.0, 1.0, 10)?;
/// h.add(0.05);
/// h.add(0.15);
/// assert_eq!(h.count(), 2);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    out_of_range: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins on
    /// `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] when the range is degenerate
    /// or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(ProbError::InvalidParameter(format!(
                "Histogram requires finite lo < hi, got ({lo}, {hi})"
            )));
        }
        if bins == 0 {
            return Err(ProbError::InvalidParameter("Histogram requires bins > 0".into()));
        }
        Ok(Self { lo, hi, counts: vec![0; bins], total: 0, out_of_range: 0 })
    }

    /// Adds an observation; values outside `[lo, hi)` are tallied
    /// separately and do not contribute to the density.
    pub fn add(&mut self, x: f64) {
        if x < self.lo || x >= self.hi || x.is_nan() {
            self.out_of_range += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every value of a slice.
    pub fn extend_from_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Number of in-range observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of observations that fell outside the histogram range — the
    /// histogram's own "unknown" bucket (out-of-model observations).
    pub fn out_of_range_count(&self) -> u64 {
        self.out_of_range
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bin probability estimates (summing to 1 over in-range data).
    /// Range: each entry lies in `[0, 1]` and the entries sum to one.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// Estimated density at `x` (count / (n * bin_width)).
    pub fn density(&self, x: f64) -> f64 {
        if x < self.lo || x >= self.hi || self.total == 0 {
            return 0.0;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
        self.counts[idx] as f64 / (self.total as f64 * w)
    }

    /// Total-variation distance between the bin-probability vectors of two
    /// equally shaped histograms.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::DimensionMismatch`] for differing bin counts.
    pub fn total_variation(&self, other: &Histogram) -> Result<f64> {
        if self.counts.len() != other.counts.len() {
            return Err(ProbError::DimensionMismatch {
                expected: self.counts.len(),
                actual: other.counts.len(),
            });
        }
        let p = self.probabilities();
        let q = other.probabilities();
        Ok(0.5 * p.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum::<f64>())
    }

    /// Total-variation distance against exact bin probabilities computed
    /// from a reference CDF.
    /// Range: `[0, 1]` — a total-variation distance between CDFs.
    pub fn total_variation_to_cdf<F: Fn(f64) -> f64>(&self, reference_cdf: F) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let p = self.probabilities();
        let mut acc = 0.0;
        let denom = reference_cdf(self.hi) - reference_cdf(self.lo);
        for (i, &pi) in p.iter().enumerate() {
            let a = self.lo + i as f64 * w;
            let b = a + w;
            let qi = if denom > 0.0 { (reference_cdf(b) - reference_cdf(a)) / denom } else { 0.0 };
            acc += (pi - qi).abs();
        }
        0.5 * acc
    }
}

/// Gaussian kernel density estimate.
///
/// # Examples
///
/// ```
/// use sysunc_prob::empirical::Kde;
/// let kde = Kde::from_sample(vec![0.0, 0.1, -0.1, 0.05])?;
/// assert!(kde.density(0.0) > kde.density(2.0));
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kde {
    sample: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Builds a KDE with Silverman's rule-of-thumb bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::EmptyData`] for samples smaller than 2 or
    /// [`ProbError::InvalidParameter`] for constant samples.
    pub fn from_sample(sample: Vec<f64>) -> Result<Self> {
        if sample.len() < 2 {
            return Err(ProbError::EmptyData);
        }
        let sd = crate::stats::std_dev(&sample)?;
        let iqr = crate::stats::quantile(&sample, 0.75)? - crate::stats::quantile(&sample, 0.25)?;
        let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
        if spread <= 0.0 {
            return Err(ProbError::InvalidParameter("KDE of constant sample".into()));
        }
        let h = 0.9 * spread * (sample.len() as f64).powf(-0.2);
        Self::with_bandwidth(sample, h)
    }

    /// Builds a KDE with an explicit bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] for non-positive bandwidths
    /// or [`ProbError::EmptyData`] for empty samples.
    pub fn with_bandwidth(sample: Vec<f64>, bandwidth: f64) -> Result<Self> {
        if sample.is_empty() {
            return Err(ProbError::EmptyData);
        }
        if !(bandwidth > 0.0) || !bandwidth.is_finite() {
            return Err(ProbError::InvalidParameter(format!(
                "KDE bandwidth must be > 0, got {bandwidth}"
            )));
        }
        Ok(Self { sample, bandwidth })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.sample.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
        self.sample
            .iter()
            .map(|&xi| {
                let z = (x - xi) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Smoothed CDF estimate at `x` (mixture of normal CDFs).
    /// Range: `[0, 1]`, monotone non-decreasing in `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        self.sample
            .iter()
            .map(|&xi| crate::special::standard_normal_cdf((x - xi) / h))
            .sum::<f64>()
            / self.sample.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Continuous, Normal};
    use crate::rng::StdRng;
    use crate::rng::SeedableRng;

    #[test]
    fn ecdf_basic() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert!((e.cdf(0.5)).abs() < 1e-15);
        assert!((e.cdf(1.0) - 1.0 / 3.0).abs() < 1e-15);
        assert!((e.cdf(10.0) - 1.0).abs() < 1e-15);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 3.0);
        assert!(Ecdf::new(vec![]).is_err());
        assert!(Ecdf::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn ks_distance_shrinks_with_sample_size() {
        // Frequentist epistemic convergence (paper Sec. III-B).
        let n_dist = Normal::standard();
        let mut prev = f64::INFINITY;
        for &n in &[100usize, 10_000] {
            let mut rng = StdRng::seed_from_u64(5);
            let xs = n_dist.sample_n(&mut rng, n);
            let e = Ecdf::new(xs).unwrap();
            let d = e.ks_distance(|x| n_dist.cdf(x));
            assert!(d < prev, "KS distance must shrink: {prev} -> {d}");
            prev = d;
        }
        assert!(prev < 0.02);
    }

    #[test]
    fn histogram_counts_and_density() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend_from_slice(&[0.5, 1.5, 1.6, 9.99, -1.0, 10.0]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.out_of_range_count(), 2);
        assert_eq!(h.counts()[1], 2);
        assert!((h.density(1.5) - 2.0 / (4.0 * 1.0)).abs() < 1e-12);
        assert!((h.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_total_variation() {
        let mut a = Histogram::new(0.0, 1.0, 2).unwrap();
        let mut b = Histogram::new(0.0, 1.0, 2).unwrap();
        a.extend_from_slice(&[0.1, 0.2, 0.6, 0.7]);
        b.extend_from_slice(&[0.1, 0.6, 0.7, 0.8]);
        // a = (0.5, 0.5), b = (0.25, 0.75) → TV = 0.25
        assert!((a.total_variation(&b).unwrap() - 0.25).abs() < 1e-12);
        let c = Histogram::new(0.0, 1.0, 3).unwrap();
        assert!(a.total_variation(&c).is_err());
    }

    #[test]
    fn histogram_tv_to_reference_cdf_converges() {
        let d = Normal::standard();
        let mut rng = StdRng::seed_from_u64(99);
        let mut h = Histogram::new(-4.0, 4.0, 32).unwrap();
        h.extend_from_slice(&d.sample_n(&mut rng, 100));
        let tv_small = h.total_variation_to_cdf(|x| d.cdf(x));
        h.extend_from_slice(&d.sample_n(&mut rng, 100_000));
        let tv_big = h.total_variation_to_cdf(|x| d.cdf(x));
        assert!(tv_big < tv_small, "TV must shrink with data: {tv_small} -> {tv_big}");
        assert!(tv_big < 0.02);
    }

    #[test]
    fn kde_integrates_to_one_and_tracks_modes() {
        let mut rng = StdRng::seed_from_u64(8);
        let d = Normal::new(2.0, 0.5).unwrap();
        let kde = Kde::from_sample(d.sample_n(&mut rng, 2_000)).unwrap();
        // Crude trapezoid integral.
        let mut acc = 0.0;
        let (a, b, n) = (-2.0, 6.0, 2_000);
        let h = (b - a) / n as f64;
        for i in 0..=n {
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            acc += w * kde.density(a + i as f64 * h);
        }
        acc *= h;
        assert!((acc - 1.0).abs() < 0.01, "KDE integral {acc}");
        assert!(kde.density(2.0) > kde.density(0.0));
        assert!(Kde::from_sample(vec![1.0]).is_err());
        assert!(Kde::with_bandwidth(vec![1.0, 2.0], 0.0).is_err());
    }
}
