//! Root integration-suite crate; see the workspace member crates for the library.
pub use sysunc as core;
pub use sysunc_serve as serve;
