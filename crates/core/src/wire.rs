//! The wire schema of the propagation service: JSON forms of
//! [`PropagationRequest`]/[`PropagationReport`] plus name-based engine
//! and model registries.
//!
//! An in-process [`PropagationRequest`] borrows its model as `&dyn
//! Model` — nothing a byte stream can carry. The wire form
//! ([`WireRequest`]) instead *names* a model registered in a
//! [`ModelRegistry`] and an engine from the fixed engine catalog, and
//! the serving layer resolves both names back to the in-process types.
//! This mirrors the machine-readable uncertainty-analysis interfaces of
//! the SysML-v2 modeling line of work: an analysis request is data, the
//! executable model stays on the server.
//!
//! Everything here round-trips through the in-tree
//! [`sysunc_prob::json`] reader/writer; floats use the shortest
//! round-tripping representation, so a decoded report is bit-identical
//! to the report the engine produced.

use crate::error::{Error, Result};
use crate::propagator::{
    EvidentialEngine, LatinHypercubeEngine, Model, MonteCarloEngine, PropagationReport,
    PropagationRequest, Propagator, SobolEngine, SpectralEngine, UncertainInput,
};
use sysunc_evidence::Interval;
use sysunc_prob::json::writer::JsonWriter;
use sysunc_prob::json::{field, obj, FromJson, Json, JsonError, ToJson};

/// The stable names of the engine catalog, in report order.
pub const ENGINE_NAMES: &[&str] =
    &["monte-carlo", "latin-hypercube", "sobol-qmc", "pce-spectral", "evidential"];

/// Constructs the engine with the given catalog name (default
/// configuration), or `None` for unknown names.
pub fn engine_by_name(name: &str) -> Option<Box<dyn Propagator + Send + Sync>> {
    match name {
        "monte-carlo" => Some(Box::new(MonteCarloEngine)),
        "latin-hypercube" => Some(Box::new(LatinHypercubeEngine)),
        "sobol-qmc" => Some(Box::new(SobolEngine)),
        "pce-spectral" => Some(Box::new(SpectralEngine::default())),
        "evidential" => Some(Box::new(EvidentialEngine::default())),
        _ => None,
    }
}

/// Interns an engine name against the catalog, recovering the
/// `&'static str` identity a [`PropagationReport`] carries.
fn intern_engine_name(name: &str) -> Option<&'static str> {
    ENGINE_NAMES.iter().find(|n| **n == name).copied()
}

/// A named catalog of deterministic models the serving layer can run.
///
/// Models are registered once at startup and looked up by name per
/// request; the registry is immutable while shared, so it can sit
/// behind an `Arc` across worker threads without locking.
#[derive(Default)]
pub struct ModelRegistry {
    entries: Vec<(String, Box<dyn Model + Send + Sync>)>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a model under a unique non-empty name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for empty or duplicate names.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        model: Box<dyn Model + Send + Sync>,
    ) -> Result<()> {
        let name = name.into();
        if name.is_empty() {
            return Err(Error::InvalidInput("model name must be non-empty".into()));
        }
        if self.get(&name).is_some() {
            return Err(Error::InvalidInput(format!("duplicate model name '{name}'")));
        }
        self.entries.push((name, model));
        Ok(())
    }

    /// The model registered under `name`.
    pub fn get(&self, name: &str) -> Option<&(dyn Model + Send + Sync)> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m.as_ref())
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The standard model catalog served out of the box: closed-form
    /// toy models plus the paper-derived orbital and perception
    /// adapters.
    ///
    /// | name | inputs | output |
    /// |---|---|---|
    /// | `sum` | any | `Σ xᵢ` |
    /// | `linear-2x3y` | 2 | `2 x₀ + 3 x₁` |
    /// | `product` | any | `Π xᵢ` |
    /// | `orbital-period` | `[m1, m2, d]` | circular two-body period |
    /// | `orbital-energy` | `[m1, m2, d]` | total mechanical energy |
    /// | `missed-hazard` | `[p_ped, p_novel]` | missed-hazard rate of the Table I camera |
    ///
    /// # Errors
    ///
    /// Propagates construction failures of the paper case-study models
    /// (impossible for the built-in constants).
    pub fn standard() -> Result<Self> {
        let mut reg = Self::new();
        reg.register("sum", Box::new(|x: &[f64]| x.iter().sum::<f64>()))?;
        reg.register("linear-2x3y", Box::new(|x: &[f64]| {
            2.0 * x.first().copied().unwrap_or(0.0) + 3.0 * x.get(1).copied().unwrap_or(0.0)
        }))?;
        reg.register("product", Box::new(|x: &[f64]| x.iter().product::<f64>()))?;
        reg.register("orbital-period", Box::new(sysunc_orbital::TwoBodyPeriodModel))?;
        reg.register("orbital-energy", Box::new(sysunc_orbital::TwoBodyEnergyModel))?;
        reg.register(
            "missed-hazard",
            Box::new(sysunc_perception::MissedHazardModel::paper_camera()?),
        )?;
        Ok(reg)
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry").field("names", &self.names()).finish()
    }
}

/// The serializable form of a propagation problem: engine and model by
/// name, everything else by value. Defaults mirror
/// [`PropagationRequest::new`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Engine catalog name (see [`ENGINE_NAMES`]).
    pub engine: String,
    /// Registered model name (see [`ModelRegistry`]).
    pub model: String,
    /// Input declarations, one per model dimension.
    pub inputs: Vec<UncertainInput>,
    /// Evaluation budget.
    pub budget: usize,
    /// Seed all engine randomness derives from.
    pub seed: u64,
    /// Quantile levels to report, each in `(0, 1)`.
    pub quantile_levels: Vec<f64>,
    /// Optional exceedance query `P(Y > threshold)`.
    pub threshold: Option<f64>,
}

impl WireRequest {
    /// A request with the same defaults as [`PropagationRequest::new`]:
    /// budget 4096, seed 2020, quantiles 5% / 50% / 95%, no threshold.
    pub fn new(
        engine: impl Into<String>,
        model: impl Into<String>,
        inputs: Vec<UncertainInput>,
    ) -> Self {
        Self {
            engine: engine.into(),
            model: model.into(),
            inputs,
            budget: 4096,
            seed: 2020,
            quantile_levels: vec![0.05, 0.5, 0.95],
            threshold: None,
        }
    }

    /// Constructs the named engine from the catalog.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] for names outside [`ENGINE_NAMES`].
    pub fn resolve_engine(&self) -> Result<Box<dyn Propagator + Send + Sync>> {
        engine_by_name(&self.engine).ok_or_else(|| {
            Error::Unsupported(format!(
                "unknown engine '{}'; known engines: {}",
                self.engine,
                ENGINE_NAMES.join(", ")
            ))
        })
    }

    /// Binds the request to a resolved model reference, producing the
    /// in-process [`PropagationRequest`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when inputs are empty or the
    /// quantile levels leave `(0, 1)`.
    pub fn to_request<'m>(&self, model: &'m dyn Model) -> Result<PropagationRequest<'m>> {
        PropagationRequest::new(self.inputs.clone(), model)?
            .with_budget(self.budget)
            .with_seed(self.seed)
            .with_quantile_levels(self.quantile_levels.clone())
            .map(|r| match self.threshold {
                Some(t) => r.with_threshold(t),
                None => r,
            })
    }
}

impl ToJson for WireRequest {
    fn to_json(&self) -> Json {
        obj([
            ("engine", self.engine.to_json()),
            ("model", self.model.to_json()),
            ("inputs", self.inputs.to_json()),
            ("budget", self.budget.to_json()),
            ("seed", self.seed.to_json()),
            ("quantile_levels", self.quantile_levels.to_json()),
            ("threshold", self.threshold.to_json()),
        ])
    }
}

impl FromJson for WireRequest {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let defaults = WireRequest::new("", "", Vec::new());
        let opt = |key: &str| v.get(key).filter(|j| !j.is_null());
        Ok(WireRequest {
            engine: field(v, "engine")?,
            model: field(v, "model")?,
            inputs: field(v, "inputs")?,
            budget: match opt("budget") {
                Some(j) => usize::from_json(j)?,
                None => defaults.budget,
            },
            seed: match opt("seed") {
                Some(j) => u64::from_json(j)?,
                None => defaults.seed,
            },
            quantile_levels: match opt("quantile_levels") {
                Some(j) => Vec::from_json(j)?,
                None => defaults.quantile_levels,
            },
            threshold: match v.get("threshold") {
                Some(j) => Option::from_json(j)?,
                None => None,
            },
        })
    }
}

/// FNV-1a/64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a/64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The FNV-1a/64 hash of a byte string — the in-tree content hash the
/// canonical request pipeline is keyed on. Stable across platforms and
/// releases by construction (pure integer arithmetic, no per-process
/// state), so cache keys and batch dedup agree between runs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A [`WireRequest`] reduced to one canonical byte form plus its
/// content hash — the shared identity of the serving pipeline.
///
/// Two wire bodies that decode to the same propagation problem (same
/// engine, model, inputs, budget, seed, quantile levels, threshold)
/// produce the same canonical bytes regardless of member order, float
/// spelling (`1.0` vs `1e0`), whitespace, or omitted-default members in
/// the original JSON text. Normalization comes in three steps:
///
/// 1. **decode** — the body is parsed into a [`WireRequest`], which
///    applies defaults and erases all textual variation;
/// 2. **canonical emission** — the struct is re-emitted with members
///    in a fixed sorted order and floats in the shortest
///    round-tripping representation (the strict in-tree writer);
/// 3. **hash** — FNV-1a/64 over the canonical bytes.
///
/// `quantile_levels` is *not* sorted or deduplicated: its order is
/// observable in the report, so reordering would merge requests whose
/// responses differ. The engine name is interned against
/// [`ENGINE_NAMES`], so constructing a `CanonicalRequest` also proves
/// the engine exists.
///
/// Consumers that cannot tolerate hash collisions (the response cache,
/// intra-batch dedup) key on the full canonical bytes and use the hash
/// only for shard/bucket placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalRequest {
    engine: &'static str,
    bytes: String,
    hash: u64,
}

impl CanonicalRequest {
    /// Canonicalizes a decoded [`WireRequest`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] for engines outside
    /// [`ENGINE_NAMES`] and [`Error::InvalidInput`] when a float member
    /// is non-finite (unrepresentable in canonical JSON).
    pub fn from_wire(wire: &WireRequest) -> Result<Self> {
        let engine = intern_engine_name(&wire.engine).ok_or_else(|| {
            Error::Unsupported(format!(
                "unknown engine '{}'; known engines: {}",
                wire.engine,
                ENGINE_NAMES.join(", ")
            ))
        })?;
        let bytes = canonical_bytes(engine, wire).map_err(|e| {
            Error::InvalidInput(format!("request has no canonical form: {e}"))
        })?;
        let hash = fnv1a64(bytes.as_bytes());
        Ok(Self { engine, bytes, hash })
    }

    /// The interned engine name (guaranteed to be in [`ENGINE_NAMES`]).
    pub fn engine(&self) -> &'static str {
        self.engine
    }

    /// The canonical JSON encoding the hash is computed over.
    pub fn bytes(&self) -> &str {
        &self.bytes
    }

    /// The FNV-1a/64 content hash of [`CanonicalRequest::bytes`].
    pub fn content_hash(&self) -> u64 {
        self.hash
    }

    /// The content hash as 16 lowercase hex digits (for logs/headers).
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

/// Emits the canonical JSON encoding: object members in sorted order
/// (`budget`, `engine`, `inputs`, `model`, `quantile_levels`, `seed`,
/// `threshold` — the last omitted when `None`), each input with its
/// variant members sorted alongside the `dist` tag, floats in the
/// shortest round-tripping representation.
fn canonical_bytes(
    engine: &'static str,
    wire: &WireRequest,
) -> std::result::Result<String, JsonError> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("budget").u64(wire.budget as u64);
    w.key("engine").string(engine);
    w.key("inputs").begin_array();
    for input in &wire.inputs {
        w.begin_object();
        match *input {
            UncertainInput::Beta { alpha, beta } => {
                w.key("alpha").f64(alpha);
                w.key("beta").f64(beta);
                w.key("dist").string("beta");
            }
            UncertainInput::Exponential { rate } => {
                w.key("dist").string("exponential");
                w.key("rate").f64(rate);
            }
            UncertainInput::Interval { lo, hi } => {
                w.key("dist").string("interval");
                w.key("hi").f64(hi);
                w.key("lo").f64(lo);
            }
            UncertainInput::Normal { mu, sigma } => {
                w.key("dist").string("normal");
                w.key("mu").f64(mu);
                w.key("sigma").f64(sigma);
            }
            UncertainInput::Uniform { a, b } => {
                w.key("a").f64(a);
                w.key("b").f64(b);
                w.key("dist").string("uniform");
            }
        }
        w.end_object();
    }
    w.end_array();
    w.key("model").string(&wire.model);
    w.key("quantile_levels").begin_array();
    for level in &wire.quantile_levels {
        w.f64(*level);
    }
    w.end_array();
    w.key("seed").u64(wire.seed);
    if let Some(threshold) = wire.threshold {
        w.key("threshold").f64(threshold);
    }
    w.end_object();
    w.finish()
}

impl ToJson for UncertainInput {
    fn to_json(&self) -> Json {
        match *self {
            UncertainInput::Normal { mu, sigma } => obj([
                ("dist", Json::Str("normal".into())),
                ("mu", mu.to_json()),
                ("sigma", sigma.to_json()),
            ]),
            UncertainInput::Uniform { a, b } => obj([
                ("dist", Json::Str("uniform".into())),
                ("a", a.to_json()),
                ("b", b.to_json()),
            ]),
            UncertainInput::Exponential { rate } => {
                obj([("dist", Json::Str("exponential".into())), ("rate", rate.to_json())])
            }
            UncertainInput::Beta { alpha, beta } => obj([
                ("dist", Json::Str("beta".into())),
                ("alpha", alpha.to_json()),
                ("beta", beta.to_json()),
            ]),
            UncertainInput::Interval { lo, hi } => obj([
                ("dist", Json::Str("interval".into())),
                ("lo", lo.to_json()),
                ("hi", hi.to_json()),
            ]),
        }
    }
}

impl FromJson for UncertainInput {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let tag: String = field(v, "dist")?;
        let input = match tag.as_str() {
            "normal" => {
                UncertainInput::Normal { mu: field(v, "mu")?, sigma: field(v, "sigma")? }
            }
            "uniform" => UncertainInput::Uniform { a: field(v, "a")?, b: field(v, "b")? },
            "exponential" => UncertainInput::Exponential { rate: field(v, "rate")? },
            "beta" => {
                UncertainInput::Beta { alpha: field(v, "alpha")?, beta: field(v, "beta")? }
            }
            "interval" => UncertainInput::Interval { lo: field(v, "lo")?, hi: field(v, "hi")? },
            other => {
                return Err(JsonError::decode(format!(
                    "unknown input dist '{other}' (expected normal | uniform | \
                     exponential | beta | interval)"
                )))
            }
        };
        for (name, x) in input_params(&input) {
            if !x.is_finite() {
                return Err(JsonError::decode(format!(
                    "input parameter '{name}' must be finite"
                )));
            }
        }
        Ok(input)
    }
}

/// The numeric parameters of an input declaration, for validation.
fn input_params(input: &UncertainInput) -> Vec<(&'static str, f64)> {
    match *input {
        UncertainInput::Normal { mu, sigma } => vec![("mu", mu), ("sigma", sigma)],
        UncertainInput::Uniform { a, b } => vec![("a", a), ("b", b)],
        UncertainInput::Exponential { rate } => vec![("rate", rate)],
        UncertainInput::Beta { alpha, beta } => vec![("alpha", alpha), ("beta", beta)],
        UncertainInput::Interval { lo, hi } => vec![("lo", lo), ("hi", hi)],
    }
}

/// The JSON form of an [`Interval`]: `{"lo": …, "hi": …}`.
pub fn interval_to_json(iv: &Interval) -> Json {
    obj([("lo", iv.lo().to_json()), ("hi", iv.hi().to_json())])
}

/// Decodes `{"lo": …, "hi": …}` back into a validated [`Interval`].
///
/// # Errors
///
/// Returns [`JsonError::Decode`] for missing members or an invalid
/// (`lo > hi`, NaN) interval.
pub fn interval_from_json(v: &Json) -> std::result::Result<Interval, JsonError> {
    let lo: f64 = field(v, "lo")?;
    let hi: f64 = field(v, "hi")?;
    Interval::new(lo, hi).map_err(|e| JsonError::decode(e.to_string()))
}

impl ToJson for PropagationReport {
    fn to_json(&self) -> Json {
        let quantiles: Vec<Json> = self
            .quantiles
            .iter()
            .map(|(p, iv)| obj([("level", p.to_json()), ("bounds", interval_to_json(iv))]))
            .collect();
        obj([
            ("engine", self.engine.to_json()),
            ("means", self.means.to_json()),
            ("kind", self.kind.to_json()),
            ("mean", interval_to_json(&self.mean)),
            ("variance", interval_to_json(&self.variance)),
            ("quantiles", Json::Arr(quantiles)),
            (
                "exceedance",
                match &self.exceedance {
                    Some(iv) => interval_to_json(iv),
                    None => Json::Null,
                },
            ),
            ("evaluations", self.evaluations.to_json()),
        ])
    }
}

impl FromJson for PropagationReport {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let engine: String = field(v, "engine")?;
        let engine = intern_engine_name(&engine).ok_or_else(|| {
            JsonError::decode(format!("unknown engine '{engine}' in report"))
        })?;
        let quantiles = v
            .get("quantiles")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::missing("quantiles"))?
            .iter()
            .map(|q| {
                let level: f64 = field(q, "level")?;
                let bounds = q.get("bounds").ok_or_else(|| JsonError::missing("bounds"))?;
                Ok((level, interval_from_json(bounds)?))
            })
            .collect::<std::result::Result<Vec<_>, JsonError>>()?;
        let exceedance = match v.get("exceedance") {
            Some(j) if !j.is_null() => Some(interval_from_json(j)?),
            _ => None,
        };
        Ok(PropagationReport {
            engine,
            means: field(v, "means")?,
            kind: field(v, "kind")?,
            mean: interval_from_json(
                v.get("mean").ok_or_else(|| JsonError::missing("mean"))?,
            )?,
            variance: interval_from_json(
                v.get("variance").ok_or_else(|| JsonError::missing("variance"))?,
            )?,
            quantiles,
            exceedance,
            evaluations: field(v, "evaluations")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::json;

    fn sample_wire_request() -> WireRequest {
        let mut req = WireRequest::new(
            "monte-carlo",
            "linear-2x3y",
            vec![
                UncertainInput::Normal { mu: 1.0, sigma: 2.0 },
                UncertainInput::Uniform { a: 0.0, b: 1.0 },
            ],
        );
        req.budget = 2000;
        req.seed = 7;
        req.threshold = Some(3.5);
        req
    }

    #[test]
    fn wire_request_round_trips() {
        let req = sample_wire_request();
        let text = json::to_string(&req);
        let back: WireRequest = json::from_str(&text).expect("decodes");
        assert_eq!(req, back);
    }

    #[test]
    fn wire_request_defaults_apply_when_members_are_absent() {
        let text = r#"{"engine":"evidential","model":"sum",
                       "inputs":[{"dist":"interval","lo":0.0,"hi":1.0}]}"#;
        let req: WireRequest = json::from_str(text).expect("decodes");
        assert_eq!(req.budget, 4096);
        assert_eq!(req.seed, 2020);
        assert_eq!(req.quantile_levels, vec![0.05, 0.5, 0.95]);
        assert_eq!(req.threshold, None);
    }

    #[test]
    fn every_input_variant_round_trips() {
        let inputs = vec![
            UncertainInput::Normal { mu: -1.5, sigma: 0.25 },
            UncertainInput::Uniform { a: 0.0, b: 2.0 },
            UncertainInput::Exponential { rate: 3.0 },
            UncertainInput::Beta { alpha: 2.0, beta: 5.0 },
            UncertainInput::Interval { lo: -0.5, hi: 0.5 },
        ];
        let text = json::to_string(&inputs);
        let back: Vec<UncertainInput> = json::from_str(&text).expect("decodes");
        assert_eq!(inputs, back);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(json::from_str::<UncertainInput>(r#"{"dist":"cauchy","x0":0.0}"#).is_err());
        assert!(json::from_str::<UncertainInput>(r#"{"mu":0.0,"sigma":1.0}"#).is_err());
        // Non-finite parameters cannot appear in valid JSON (no NaN
        // literal), but `null`-degraded floats decode as missing.
        assert!(
            json::from_str::<UncertainInput>(r#"{"dist":"normal","mu":null,"sigma":1.0}"#)
                .is_err()
        );
    }

    #[test]
    fn engine_catalog_resolves_every_name_and_rejects_others() {
        for name in ENGINE_NAMES {
            let engine = engine_by_name(name).expect("catalog name");
            assert_eq!(engine.name(), *name);
        }
        assert!(engine_by_name("simulated-annealing").is_none());
        let mut req = sample_wire_request();
        assert_eq!(req.resolve_engine().expect("known").name(), "monte-carlo");
        req.engine = "nope".into();
        assert!(matches!(req.resolve_engine(), Err(Error::Unsupported(_))));
    }

    #[test]
    fn standard_registry_serves_the_documented_catalog() {
        let reg = ModelRegistry::standard().expect("builds");
        for name in
            ["sum", "linear-2x3y", "product", "orbital-period", "orbital-energy", "missed-hazard"]
        {
            assert!(reg.get(name).is_some(), "missing model '{name}'");
        }
        assert_eq!(reg.len(), 6);
        let linear = reg.get("linear-2x3y").expect("registered");
        assert_eq!(linear.eval(&[1.0, 1.0]), 5.0);
        assert!(reg.get("unknown").is_none());
    }

    #[test]
    fn registry_rejects_duplicates_and_empty_names() {
        let mut reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.register("m", Box::new(|x: &[f64]| x[0])).expect("first");
        assert!(reg.register("m", Box::new(|x: &[f64]| x[0])).is_err());
        assert!(reg.register("", Box::new(|x: &[f64]| x[0])).is_err());
        assert_eq!(reg.names(), vec!["m"]);
    }

    #[test]
    fn wire_request_binds_to_the_in_process_request() {
        let wire = sample_wire_request();
        let reg = ModelRegistry::standard().expect("builds");
        let model = reg.get(&wire.model).expect("registered");
        let req = wire.to_request(model).expect("valid");
        assert_eq!(req.budget, 2000);
        assert_eq!(req.seed, 7);
        assert_eq!(req.threshold, Some(3.5));
        let engine = wire.resolve_engine().expect("known");
        let report = engine.propagate(&req).expect("runs");
        assert!((report.mean_estimate() - 3.5).abs() < 0.5);
    }

    #[test]
    fn report_round_trips_bit_identically_for_every_engine() {
        let reg = ModelRegistry::standard().expect("builds");
        let model = reg.get("linear-2x3y").expect("registered");
        for engine_name in ENGINE_NAMES {
            let mut wire = sample_wire_request();
            wire.engine = (*engine_name).into();
            wire.budget = 600;
            let req = wire.to_request(model).expect("valid");
            let engine = wire.resolve_engine().expect("known");
            let report = engine.propagate(&req).expect("runs");
            let text = json::to_string(&report);
            let back: PropagationReport = json::from_str(&text).expect("decodes");
            assert_eq!(report, back, "{engine_name} report must round-trip exactly");
        }
    }

    #[test]
    fn fnv1a64_matches_the_published_test_vectors() {
        // Offset basis and the classic reference vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn canonical_form_is_invariant_under_json_spelling() {
        // Same propagation problem, four textual spellings: member
        // order, float notation, whitespace, omitted defaults.
        let texts = [
            r#"{"engine":"monte-carlo","model":"sum",
                "inputs":[{"dist":"normal","mu":1.0,"sigma":0.5}],
                "budget":4096,"seed":2020,
                "quantile_levels":[0.05,0.5,0.95],"threshold":null}"#,
            r#"{"model":"sum","engine":"monte-carlo",
                "inputs":[{"sigma":0.5,"mu":1.0,"dist":"normal"}]}"#,
            r#"{"engine":"monte-carlo","model":"sum","seed":2020,
                "inputs":[{"dist":"normal","mu":1e0,"sigma":5e-1}]}"#,
            "{\"engine\":\"monte-carlo\",\"model\":\"sum\",\t\n \
             \"inputs\":[{\"dist\":\"normal\",\"mu\":1.00,\"sigma\":0.50}]}",
        ];
        let canons: Vec<CanonicalRequest> = texts
            .iter()
            .map(|t| {
                let wire: WireRequest = json::from_str(t).expect("decodes");
                CanonicalRequest::from_wire(&wire).expect("canonicalizes")
            })
            .collect();
        for c in &canons[1..] {
            assert_eq!(c.bytes(), canons[0].bytes());
            assert_eq!(c.content_hash(), canons[0].content_hash());
        }
        assert_eq!(canons[0].engine(), "monte-carlo");
        assert_eq!(canons[0].hash_hex().len(), 16);
        // The canonical encoding itself decodes back to the same
        // request — canonicalization is a fixed point.
        let back: WireRequest = json::from_str(canons[0].bytes()).expect("decodes");
        let again = CanonicalRequest::from_wire(&back).expect("canonicalizes");
        assert_eq!(again, canons[0]);
    }

    #[test]
    fn distinct_problems_get_distinct_canonical_bytes() {
        let base = sample_wire_request();
        let canon = |w: &WireRequest| CanonicalRequest::from_wire(w).expect("canonical");
        let reference = canon(&base);
        let mut seed = base.clone();
        seed.seed += 1;
        assert_ne!(canon(&seed), reference);
        let mut budget = base.clone();
        budget.budget += 1;
        assert_ne!(canon(&budget), reference);
        let mut threshold = base.clone();
        threshold.threshold = None;
        assert_ne!(canon(&threshold), reference);
        let mut engine = base.clone();
        engine.engine = "evidential".into();
        assert_ne!(canon(&engine), reference);
        // Quantile order is observable in the report, so it must not
        // be normalized away.
        let mut levels = base.clone();
        levels.quantile_levels = vec![0.95, 0.5, 0.05];
        assert_ne!(canon(&levels), reference);
    }

    #[test]
    fn canonicalization_rejects_unknown_engines_and_non_finite_floats() {
        let mut wire = sample_wire_request();
        wire.engine = "warp".into();
        assert!(matches!(
            CanonicalRequest::from_wire(&wire),
            Err(Error::Unsupported(_))
        ));
        let mut wire = sample_wire_request();
        wire.threshold = Some(f64::NAN);
        assert!(matches!(
            CanonicalRequest::from_wire(&wire),
            Err(Error::InvalidInput(_))
        ));
    }

    #[test]
    fn report_decode_rejects_foreign_engines_and_bad_intervals() {
        let reg = ModelRegistry::standard().expect("builds");
        let model = reg.get("sum").expect("registered");
        let wire = WireRequest::new(
            "monte-carlo",
            "sum",
            vec![UncertainInput::Uniform { a: 0.0, b: 1.0 }],
        );
        let req = wire.to_request(model).expect("valid");
        let report = wire.resolve_engine().expect("known").propagate(&req).expect("runs");
        let mut doc = json::parse(&json::to_string(&report)).expect("parses");
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "engine" {
                    *v = Json::Str("other".into());
                }
            }
        }
        assert!(json::from_str::<PropagationReport>(&doc.emit()).is_err());
        assert!(interval_from_json(&json::parse(r#"{"lo":2.0,"hi":1.0}"#).expect("parses"))
            .is_err());
    }
}
