//! Continuous uniform distribution.

use super::{Continuous, Support};
use crate::error::{ProbError, Result};
use crate::rng::RngCore;

/// Uniform distribution on the interval `[a, b]`.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Continuous, Uniform};
/// let u = Uniform::new(2.0, 6.0)?;
/// assert!((u.mean() - 4.0).abs() < 1e-15);
/// assert!((u.cdf(3.0) - 0.25).abs() < 1e-15);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[a, b]`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if `a >= b` or either bound is
    /// non-finite.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        if !a.is_finite() || !b.is_finite() || a >= b {
            return Err(ProbError::InvalidParameter(format!(
                "Uniform requires finite a < b, got a={a}, b={b}"
            )));
        }
        Ok(Self { a, b })
    }

    /// The standard uniform on `[0, 1]`.
    pub fn standard() -> Self {
        Self { a: 0.0, b: 1.0 }
    }

    /// Lower bound.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Upper bound.
    pub fn b(&self) -> f64 {
        self.b
    }
}

impl Continuous for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.a && x <= self.b {
            1.0 / (self.b - self.a)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.a {
            0.0
        } else if x > self.b {
            1.0
        } else {
            (x - self.a) / (self.b - self.a)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "Uniform::quantile: p in [0,1], got {p}");
        self.a + p * (self.b - self.a)
    }

    fn quantile_fill(&self, ps: &[f64], out: &mut [f64]) {
        assert_eq!(ps.len(), out.len(), "quantile_fill: slice lengths differ");
        assert!(
            ps.iter().all(|p| (0.0..=1.0).contains(p)),
            "Uniform::quantile_fill: p in [0,1]"
        );
        // Checked up front so the fill itself is a straight fused
        // multiply-add the autovectorizer can lower to SIMD; same
        // expression as `quantile`, so results are bit-identical.
        let (a, w) = (self.a, self.b - self.a);
        for (y, &p) in out.iter_mut().zip(ps) {
            *y = a + p * w;
        }
    }

    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    fn variance(&self) -> f64 {
        let w = self.b - self.a;
        w * w / 12.0
    }

    fn support(&self) -> Support {
        Support::new(self.a, self.b)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use crate::rng::Rng as _;
        self.a + rng.random::<f64>() * (self.b - self.a)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_degenerate_interval() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NEG_INFINITY, 0.0).is_err());
    }

    #[test]
    fn density_is_flat_and_normalized() {
        let u = Uniform::new(-1.0, 3.0).unwrap();
        assert!((u.pdf(0.0) - 0.25).abs() < 1e-15);
        assert_eq!(u.pdf(-2.0), 0.0);
        assert_eq!(u.pdf(4.0), 0.0);
        testutil::check_pdf_integrates_to_cdf(&u, -1.0, 3.0, 1e-10);
    }

    #[test]
    fn quantile_round_trip() {
        let u = Uniform::new(10.0, 20.0).unwrap();
        testutil::check_quantile_cdf_round_trip(&u, &[10.5, 13.0, 17.7, 19.9], 1e-12);
    }

    #[test]
    fn chunked_fills_match_scalar_calls() {
        testutil::check_fills_match_scalar(&Uniform::new(-1.0, 3.0).unwrap(), 31);
        // Beta has no override — exercises the trait's default loops.
        testutil::check_fills_match_scalar(&crate::dist::Beta::new(2.0, 5.0).unwrap(), 32);
    }

    #[test]
    fn sampling_stays_in_support_with_correct_moments() {
        let u = Uniform::new(2.0, 4.0).unwrap();
        let mut r = testutil::rng(7);
        for x in u.sample_n(&mut r, 10_000) {
            assert!((2.0..=4.0).contains(&x));
        }
        testutil::check_sample_moments(&u, 11, 100_000, 4.0);
    }
}
