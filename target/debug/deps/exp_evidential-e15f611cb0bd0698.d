/root/repo/target/debug/deps/exp_evidential-e15f611cb0bd0698.d: crates/bench/src/bin/exp_evidential.rs

/root/repo/target/debug/deps/libexp_evidential-e15f611cb0bd0698.rmeta: crates/bench/src/bin/exp_evidential.rs

crates/bench/src/bin/exp_evidential.rs:
