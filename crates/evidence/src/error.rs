//! Error types for the evidence-theory crate.

use std::fmt;

/// Errors from interval, mass-function and fuzzy-number construction.
#[derive(Debug, Clone, PartialEq)]
pub enum EvidenceError {
    /// An interval or cut family was malformed; the payload shows it.
    InvalidInterval(String),
    /// A frame of discernment was malformed (empty, too large, duplicate
    /// names).
    InvalidFrame(String),
    /// A basic probability assignment was malformed.
    InvalidMass(String),
    /// A hypothesis name was not found in the frame.
    UnknownHypothesis(String),
    /// Two mass functions over different frames were combined.
    FrameMismatch,
    /// Dempster combination met total conflict (`K = 1`).
    TotalConflict,
}

impl fmt::Display for EvidenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvidenceError::InvalidInterval(what) => write!(f, "invalid interval: {what}"),
            EvidenceError::InvalidFrame(msg) => write!(f, "invalid frame: {msg}"),
            EvidenceError::InvalidMass(msg) => write!(f, "invalid mass assignment: {msg}"),
            EvidenceError::UnknownHypothesis(name) => {
                write!(f, "hypothesis '{name}' is not in the frame")
            }
            EvidenceError::FrameMismatch => write!(f, "mass functions have different frames"),
            EvidenceError::TotalConflict => {
                write!(f, "total conflict: Dempster combination undefined")
            }
        }
    }
}

impl std::error::Error for EvidenceError {}

/// Convenience result alias for the evidence crate.
pub type Result<T> = std::result::Result<T, EvidenceError>;
