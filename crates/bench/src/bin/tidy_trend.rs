//! Appends one lint-suppression trend record to the bench trajectory.
//!
//! ```text
//! sysunc-tidy --json | tidy_trend [--out FILE]
//! ```
//!
//! Reads a `sysunc-tidy/1` findings document from stdin (or `--in
//! FILE`), folds it into a `sysunc-bench-trend/1` record with per-rule
//! allowed/baselined exception counts, and appends it as one JSON line
//! to `--out` (default `BENCH_tidy_trend.json`) — printing it to
//! stdout as well.

use std::io::Read;
use std::process::ExitCode;
use sysunc::prob::json::parse;
use sysunc_bench::trend::trend_record;

fn main() -> ExitCode {
    let mut input_path: Option<String> = None;
    let mut out_path = String::from("BENCH_tidy_trend.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--in", Some(v)) => input_path = Some(v.clone()),
            ("--out", Some(v)) => out_path = v.clone(),
            (other, _) => {
                eprintln!("tidy_trend: bad or incomplete flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let text = match input_path {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("tidy_trend: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut buffer = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buffer) {
                eprintln!("tidy_trend: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buffer
        }
    };

    let report = match parse(&text) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("tidy_trend: input is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let record = match trend_record(&report) {
        Ok(record) => record,
        Err(e) => {
            eprintln!("tidy_trend: input is not a sysunc-tidy/1 document: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{record}");
    let mut appended = std::fs::read_to_string(&out_path).unwrap_or_default();
    if !appended.is_empty() && !appended.ends_with('\n') {
        appended.push('\n');
    }
    appended.push_str(&record);
    appended.push('\n');
    if let Err(e) = std::fs::write(&out_path, appended) {
        eprintln!("tidy_trend: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
