/root/repo/target/debug/deps/exp_fig2_models-aef126406510d4d7.d: crates/bench/src/bin/exp_fig2_models.rs

/root/repo/target/debug/deps/libexp_fig2_models-aef126406510d4d7.rmeta: crates/bench/src/bin/exp_fig2_models.rs

crates/bench/src/bin/exp_fig2_models.rs:
