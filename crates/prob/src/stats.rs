//! Descriptive statistics and online moment accumulation.

use crate::error::{ProbError, Result};

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] for empty input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(ProbError::EmptyData);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (denominator `n - 1`).
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] when fewer than two observations are
/// given.
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(ProbError::EmptyData);
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] when fewer than two observations are
/// given.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Standard error of the mean, `s / sqrt(n)`.
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] when fewer than two observations are
/// given.
pub fn standard_error(xs: &[f64]) -> Result<f64> {
    Ok(std_dev(xs)? / (xs.len() as f64).sqrt())
}

/// Sample skewness (adjusted Fisher–Pearson).
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] when fewer than three observations are
/// given.
pub fn skewness(xs: &[f64]) -> Result<f64> {
    let n = xs.len();
    if n < 3 {
        return Err(ProbError::EmptyData);
    }
    let m = mean(xs)?;
    let s = std_dev(xs)?;
    let nf = n as f64;
    let m3 = xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>();
    Ok(nf / ((nf - 1.0) * (nf - 2.0)) * m3)
}

/// Excess kurtosis (zero for the normal distribution), unbiased estimator.
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] when fewer than four observations are
/// given.
pub fn excess_kurtosis(xs: &[f64]) -> Result<f64> {
    let n = xs.len();
    if n < 4 {
        return Err(ProbError::EmptyData);
    }
    let m = mean(xs)?;
    let s2 = variance(xs)?;
    let nf = n as f64;
    let m4 = xs.iter().map(|x| (x - m).powi(4)).sum::<f64>();
    Ok(nf * (nf + 1.0) / ((nf - 1.0) * (nf - 2.0) * (nf - 3.0)) * m4 / (s2 * s2)
        - 3.0 * (nf - 1.0) * (nf - 1.0) / ((nf - 2.0) * (nf - 3.0)))
}

/// A sample sorted once, answering arbitrarily many quantile queries
/// without re-sorting — the single source of truth for every sort-based
/// quantile in the workspace ([`quantile`], the ECDF inverse, and the
/// propagation engines' per-level quantile loops all delegate here).
///
/// # Examples
///
/// ```
/// use sysunc_prob::stats::SortedSample;
/// let s = SortedSample::from_slice(&[4.0, 1.0, 3.0, 2.0])?;
/// assert!((s.interpolated(0.5) - 2.5).abs() < 1e-15);
/// assert!((s.lower(0.5) - 2.0).abs() < 1e-15);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SortedSample {
    sorted: Vec<f64>,
}

impl SortedSample {
    /// Sorts a copy of the sample.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::EmptyData`] for empty input or
    /// [`ProbError::InvalidParameter`] when the sample contains NaN.
    pub fn from_slice(xs: &[f64]) -> Result<Self> {
        Self::from_vec(xs.to_vec())
    }

    /// Sorts the sample in place, taking ownership.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::EmptyData`] for empty input or
    /// [`ProbError::InvalidParameter`] when the sample contains NaN.
    pub fn from_vec(mut xs: Vec<f64>) -> Result<Self> {
        if xs.is_empty() {
            return Err(ProbError::EmptyData);
        }
        if xs.iter().any(|x| x.is_nan()) {
            return Err(ProbError::InvalidParameter("sample contains NaN".into()));
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("checked for NaN")); // tidy: allow(panic)
        Ok(Self { sorted: xs })
    }

    /// Number of observations (always at least one).
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for constructed values,
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted observations.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Interpolated quantile between order statistics (Hyndman–Fan
    /// type 7, the R/NumPy default). `p` is clamped to `[0, 1]`.
    pub fn interpolated(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p), "quantile level {p} outside [0,1]");
        let h = (self.sorted.len() - 1) as f64 * p.clamp(0.0, 1.0);
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        self.sorted[lo] + (h - lo as f64) * (self.sorted[hi] - self.sorted[lo])
    }

    /// Smallest order statistic with empirical CDF at least `p`
    /// (Hyndman–Fan type 1, the inverse-ECDF estimator). `p` is clamped
    /// to `[0, 1]`.
    pub fn lower(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p), "quantile level {p} outside [0,1]");
        if p <= 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let k = ((p.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[k - 1]
    }

    /// Fraction of observations strictly above `threshold`, via binary
    /// search on the sorted sample.
    /// Range: `[0, 1]` — an empirical exceedance frequency.
    pub fn exceedance(&self, threshold: f64) -> f64 {
        let below_or_equal = self.sorted.partition_point(|&v| v <= threshold);
        (self.sorted.len() - below_or_equal) as f64 / self.sorted.len() as f64
    }
}

/// Empirical quantile with linear interpolation between order statistics
/// (Hyndman–Fan type 7, the R/NumPy default).
///
/// One-shot convenience over [`SortedSample`]; sorts on every call, so
/// batch callers querying several levels should build a [`SortedSample`]
/// once instead.
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] for empty data or
/// [`ProbError::InvalidParameter`] for `p` outside `[0, 1]` or NaN data.
pub fn quantile(xs: &[f64], p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(ProbError::InvalidParameter(format!("quantile level must be in [0,1], got {p}")));
    }
    Ok(SortedSample::from_slice(xs)?.interpolated(p))
}

/// Median (50% quantile).
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] for empty input.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Sample covariance of two paired samples (denominator `n - 1`).
///
/// # Errors
///
/// Returns [`ProbError::DimensionMismatch`] for unequal lengths and
/// [`ProbError::EmptyData`] for fewer than two pairs.
pub fn covariance(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(ProbError::DimensionMismatch { expected: xs.len(), actual: ys.len() });
    }
    if xs.len() < 2 {
        return Err(ProbError::EmptyData);
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    Ok(xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Pearson correlation coefficient.
///
/// # Errors
///
/// Propagates the errors of [`covariance`]; additionally errors when either
/// sample is constant.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Result<f64> {
    let c = covariance(xs, ys)?;
    let sx = std_dev(xs)?;
    let sy = std_dev(ys)?;
    if sx == 0.0 || sy == 0.0 { // tidy: allow(float-eq)
        return Err(ProbError::InvalidParameter("correlation of constant sample".into()));
    }
    Ok(c / (sx * sy))
}

/// Spearman rank correlation.
///
/// # Errors
///
/// Same as [`pearson_correlation`].
pub fn spearman_correlation(xs: &[f64], ys: &[f64]) -> Result<f64> {
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson_correlation(&rx, &ry)
}

/// Mid-ranks (ties get the average rank).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input")); // tidy: allow(panic)
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Numerically stable online accumulator for mean/variance/min/max
/// (Welford's algorithm). Suitable for streaming Monte Carlo estimates.
///
/// # Examples
///
/// ```
/// use sysunc_prob::stats::RunningStats;
/// let mut rs = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     rs.push(x);
/// }
/// assert!((rs.mean() - 2.5).abs() < 1e-15);
/// assert_eq!(rs.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased variance; zero when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.n == 0 {
            f64::INFINITY
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observed value (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-15);
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn sorted_sample_agrees_with_one_shot_quantile() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = SortedSample::from_slice(&xs).unwrap();
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert_eq!(s.interpolated(p), quantile(&xs, p).unwrap(), "p={p}");
        }
        assert_eq!(s.len(), xs.len());
        assert!(!s.is_empty());
        assert_eq!(s.sorted()[0], 1.0);
        assert_eq!(*s.sorted().last().unwrap(), 9.0);
    }

    #[test]
    fn sorted_sample_lower_is_inverse_ecdf() {
        let s = SortedSample::from_vec(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.lower(0.0), 1.0);
        assert_eq!(s.lower(1.0 / 3.0), 1.0);
        assert_eq!(s.lower(0.5), 2.0);
        assert_eq!(s.lower(1.0), 3.0);
    }

    #[test]
    fn sorted_sample_exceedance_matches_linear_count() {
        let xs = [0.5, 1.5, 2.5, 3.5];
        let s = SortedSample::from_slice(&xs).unwrap();
        for t in [-1.0, 0.5, 1.0, 2.5, 9.0] {
            let linear = xs.iter().filter(|&&y| y > t).count() as f64 / xs.len() as f64;
            assert_eq!(s.exceedance(t), linear, "t={t}");
        }
    }

    #[test]
    fn sorted_sample_rejects_empty_and_nan() {
        assert!(SortedSample::from_slice(&[]).is_err());
        assert!(SortedSample::from_vec(vec![1.0, f64::NAN]).is_err());
        assert!(quantile(&[1.0, f64::NAN], 0.5).is_err());
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0).unwrap() - 1.0).abs() < 1e-15);
        assert!((quantile(&xs, 1.0).unwrap() - 4.0).abs() < 1e-15);
        assert!((median(&xs).unwrap() - 2.5).abs() < 1e-15);
        assert!((quantile(&xs, 1.0 / 3.0).unwrap() - 2.0).abs() < 1e-12);
        assert!(quantile(&xs, 1.5).is_err());
    }

    #[test]
    fn correlation_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&xs, &zs).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson_correlation(&xs, &[1.0, 1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but nonlinear relation: Spearman = 1, Pearson < 1.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect();
        assert!((spearman_correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson_correlation(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn skewness_and_kurtosis_of_symmetric_data() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).unwrap().abs() < 1e-12);
        assert!(excess_kurtosis(&xs).unwrap() < 0.0); // platykurtic
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs).unwrap()).abs() < 1e-12);
        assert_eq!(rs.min(), 1.0);
        assert_eq!(rs.max(), 9.0);
    }

    #[test]
    fn running_stats_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.count(), 100);
    }
}
