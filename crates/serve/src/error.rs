//! Error type of the serving layer.

use std::fmt;

/// Errors raised while speaking HTTP or operating the server.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying socket operation failed; the payload is the
    /// rendered `std::io::Error`.
    Io(String),
    /// The peer sent bytes that are not valid HTTP/1.1.
    Protocol(String),
    /// A message head or body exceeded the configured size limit.
    TooLarge {
        /// Which part overflowed (`"head"` or `"body"`).
        part: &'static str,
        /// The configured ceiling in bytes.
        limit: usize,
    },
    /// The connection closed in the middle of a message.
    Closed,
    /// A request missed its deadline.
    Timeout,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "socket error: {msg}"),
            ServeError::Protocol(msg) => write!(f, "malformed HTTP message: {msg}"),
            ServeError::TooLarge { part, limit } => {
                write!(f, "message {part} exceeds the {limit}-byte limit")
            }
            ServeError::Closed => write!(f, "connection closed mid-message"),
            ServeError::Timeout => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

/// Convenience result alias for the serving crate.
pub type Result<T> = std::result::Result<T, ServeError>;
