//! Folds a loadgen suite into the serve trend trajectory and trips on
//! throughput regressions.
//!
//! ```text
//! serve_trend [--in BENCH_serve.json] [--out BENCH_serve_trend.json]
//!             [--baseline serve.baseline] [--write-baseline]
//!             [--min-ratio 0.8] [--cache-speedup 5.0]
//! ```
//!
//! Reads a `sysunc-bench-serve/2` suite document, appends one
//! `sysunc-bench-serve-trend/1` record to `--out`, and compares the
//! run against `--baseline`:
//!
//! - a mode whose throughput drops below `--min-ratio` (default 0.8,
//!   i.e. a >20% regression) of the baseline fails the run;
//! - cache-hot throughput below `--cache-speedup` (default 5.0) times
//!   cold throughput fails the run — the response cache must earn its
//!   keep.
//!
//! When the baseline file does not exist yet (first run on a machine),
//! the current suite is written as the new baseline and the checks
//! pass vacuously; `--write-baseline` forces that refresh.

use std::process::ExitCode;
use sysunc::prob::json::parse;
use sysunc_bench::trend::{
    cache_speedup_shortfall, serve_mode_summaries, serve_trend_record,
    throughput_regressions,
};

struct Args {
    input: String,
    out: String,
    baseline: String,
    write_baseline: bool,
    min_ratio: f64,
    cache_speedup: f64,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        input: "BENCH_serve.json".into(),
        out: "BENCH_serve_trend.json".into(),
        baseline: "serve.baseline".into(),
        write_baseline: false,
        min_ratio: 0.8,
        cache_speedup: 5.0,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--in" => parsed.input = value("--in")?,
            "--out" => parsed.out = value("--out")?,
            "--baseline" => parsed.baseline = value("--baseline")?,
            "--write-baseline" => parsed.write_baseline = true,
            "--min-ratio" => {
                parsed.min_ratio = value("--min-ratio")?
                    .parse()
                    .map_err(|e| format!("--min-ratio: {e}"))?
            }
            "--cache-speedup" => {
                parsed.cache_speedup = value("--cache-speedup")?
                    .parse()
                    .map_err(|e| format!("--cache-speedup: {e}"))?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("serve_trend: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let text = match std::fs::read_to_string(&args.input) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("serve_trend: cannot read {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let suite = match parse(&text) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("serve_trend: {} is not valid JSON: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let summaries = match serve_mode_summaries(&suite) {
        Ok(summaries) => summaries,
        Err(e) => {
            eprintln!("serve_trend: {} is not a serve suite: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let record = match serve_trend_record(&suite) {
        Ok(record) => record,
        Err(e) => {
            eprintln!("serve_trend: cannot fold the suite: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{record}");
    let mut appended = std::fs::read_to_string(&args.out).unwrap_or_default();
    if !appended.is_empty() && !appended.ends_with('\n') {
        appended.push('\n');
    }
    appended.push_str(&record);
    appended.push('\n');
    if let Err(e) = std::fs::write(&args.out, appended) {
        eprintln!("serve_trend: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }

    // The cache-speedup invariant holds regardless of any baseline.
    if let Some(msg) = cache_speedup_shortfall(&summaries, args.cache_speedup) {
        eprintln!("serve_trend: FAIL: {msg}");
        return ExitCode::FAILURE;
    }

    let baseline_text = match std::fs::read_to_string(&args.baseline) {
        Ok(text) if !args.write_baseline => Some(text),
        _ => None,
    };
    match baseline_text {
        Some(text) => {
            let baseline = match parse(&text).ok().as_ref().map(serve_mode_summaries) {
                Some(Ok(baseline)) => baseline,
                _ => {
                    eprintln!(
                        "serve_trend: {} is not a serve suite; refresh it with \
                         --write-baseline",
                        args.baseline
                    );
                    return ExitCode::FAILURE;
                }
            };
            let findings = throughput_regressions(&summaries, &baseline, args.min_ratio);
            if !findings.is_empty() {
                for finding in &findings {
                    eprintln!("serve_trend: FAIL: {finding}");
                }
                return ExitCode::FAILURE;
            }
            println!(
                "serve_trend: ok — {} mode(s) within {:.0}% of baseline",
                summaries.len(),
                args.min_ratio * 100.0
            );
        }
        None => {
            if let Err(e) = std::fs::write(&args.baseline, &text) {
                eprintln!("serve_trend: cannot write baseline {}: {e}", args.baseline);
                return ExitCode::FAILURE;
            }
            println!("serve_trend: wrote new baseline {}", args.baseline);
        }
    }
    ExitCode::SUCCESS
}
