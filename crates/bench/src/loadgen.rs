//! Loopback load generator for the propagation server.
//!
//! Drives `POST /v1/propagate` from N concurrent client threads over
//! keep-alive connections, collects per-request wall-clock latencies,
//! and renders a machine-readable summary (`BENCH_serve.json`) with
//! throughput and latency percentiles — the serving-layer entry in the
//! bench trajectory.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};
use sysunc::prob::json::writer::JsonWriter;
use sysunc::prob::json::JsonError;
use sysunc::{UncertainInput, WireRequest};
use sysunc_serve::{HttpClient, ServeError};

/// Shape of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client threads, each with its own connection.
    pub clients: usize,
    /// Requests each client issues sequentially.
    pub requests_per_client: usize,
    /// Engine name sent in every request.
    pub engine: String,
    /// Registered model name sent in every request.
    pub model: String,
    /// Evaluation budget per request.
    pub budget: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            clients: 8,
            requests_per_client: 25,
            engine: "monte-carlo".into(),
            model: "sum".into(),
            budget: 2048,
        }
    }
}

impl LoadgenConfig {
    /// The wire request client `c` sends as its `i`-th call. Seeds are
    /// distinct per call so the server does real, varied work.
    pub fn request(&self, client: usize, call: usize) -> WireRequest {
        let mut wire = WireRequest::new(
            self.engine.clone(),
            self.model.clone(),
            vec![
                UncertainInput::Normal { mu: 1.0, sigma: 0.5 },
                UncertainInput::Uniform { a: 0.0, b: 2.0 },
            ],
        );
        wire.budget = self.budget;
        wire.seed = (client as u64) * 1_000_003 + call as u64 + 1;
        wire
    }
}

/// Outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenResult {
    /// Requests attempted.
    pub requests: u64,
    /// Requests answered `200` with a decodable report.
    pub ok: u64,
    /// Everything else (transport errors, non-200 statuses).
    pub failed: u64,
    /// Wall-clock span of the whole run.
    pub elapsed: Duration,
    /// Per-request latencies in microseconds, sorted ascending.
    pub latencies_micros: Vec<u64>,
}

impl LoadgenResult {
    /// Completed requests per second over the run.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ok as f64 / secs
        } else {
            0.0
        }
    }

    /// Nearest-rank percentile of the recorded latencies; `0` when no
    /// request completed. `p` is in `[0, 100]`.
    pub fn percentile_micros(&self, p: f64) -> u64 {
        if self.latencies_micros.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.latencies_micros.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, self.latencies_micros.len()) - 1;
        self.latencies_micros[idx]
    }

    /// Renders the `sysunc-bench-serve/1` JSON summary document.
    ///
    /// # Errors
    ///
    /// Propagates [`JsonError`] from the strict writer (unreachable
    /// for finite inputs, but surfaced rather than hidden).
    pub fn to_json(&self, config: &LoadgenConfig) -> Result<String, JsonError> {
        let mean = if self.latencies_micros.is_empty() {
            0.0
        } else {
            let sum: u64 = self.latencies_micros.iter().sum();
            sum as f64 / self.latencies_micros.len() as f64
        };
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string("sysunc-bench-serve/1");
        w.key("engine").string(&config.engine);
        w.key("model").string(&config.model);
        w.key("budget").u64(config.budget as u64);
        w.key("clients").u64(config.clients as u64);
        w.key("requests").u64(self.requests);
        w.key("ok").u64(self.ok);
        w.key("failed").u64(self.failed);
        w.key("elapsed_micros")
            .u64(self.elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
        w.key("throughput_rps").f64(self.throughput_rps());
        w.key("latency_micros").begin_object();
        w.key("min").u64(self.latencies_micros.first().copied().unwrap_or(0));
        w.key("p50").u64(self.percentile_micros(50.0));
        w.key("p90").u64(self.percentile_micros(90.0));
        w.key("p99").u64(self.percentile_micros(99.0));
        w.key("max").u64(self.latencies_micros.last().copied().unwrap_or(0));
        w.key("mean").f64(mean);
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Runs the load against a server at `addr`.
///
/// # Errors
///
/// Returns [`ServeError`] when no client could even connect; partial
/// per-request failures are counted in the result instead.
pub fn run(addr: SocketAddr, config: &LoadgenConfig) -> Result<LoadgenResult, ServeError> {
    let (tx, rx) = mpsc::channel::<(u64, u64, Vec<u64>)>();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..config.clients.max(1) {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut ok = 0u64;
                let mut failed = 0u64;
                let mut latencies = Vec::with_capacity(config.requests_per_client);
                let mut conn = HttpClient::connect(addr);
                for call in 0..config.requests_per_client {
                    let Ok(c) = conn.as_mut() else {
                        failed += 1;
                        continue;
                    };
                    let wire = config.request(client, call);
                    let t0 = Instant::now();
                    match c.propagate(&wire) {
                        Ok(_) => {
                            ok += 1;
                            latencies.push(
                                t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                            );
                        }
                        Err(_) => {
                            failed += 1;
                            // The connection may be poisoned; reconnect.
                            conn = HttpClient::connect(addr);
                        }
                    }
                }
                let _ = tx.send((ok, failed, latencies));
            });
        }
    });
    drop(tx);
    let mut result = LoadgenResult {
        requests: (config.clients.max(1) * config.requests_per_client) as u64,
        ok: 0,
        failed: 0,
        elapsed: Duration::ZERO,
        latencies_micros: Vec::new(),
    };
    for (ok, failed, latencies) in rx {
        result.ok += ok;
        result.failed += failed;
        result.latencies_micros.extend(latencies);
    }
    result.elapsed = started.elapsed();
    result.latencies_micros.sort_unstable();
    if result.ok == 0 {
        return Err(ServeError::Io("no request succeeded".into()));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank_on_sorted_data() {
        let r = LoadgenResult {
            requests: 4,
            ok: 4,
            failed: 0,
            elapsed: Duration::from_secs(2),
            latencies_micros: vec![10, 20, 30, 40],
        };
        assert_eq!(r.percentile_micros(50.0), 20);
        assert_eq!(r.percentile_micros(99.0), 40);
        assert_eq!(r.percentile_micros(0.0), 10);
        assert!((r.throughput_rps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_results_do_not_divide_by_zero() {
        let r = LoadgenResult {
            requests: 0,
            ok: 0,
            failed: 0,
            elapsed: Duration::ZERO,
            latencies_micros: vec![],
        };
        assert_eq!(r.percentile_micros(50.0), 0);
        assert_eq!(r.throughput_rps(), 0.0);
        let text = r.to_json(&LoadgenConfig::default()).expect("renders");
        assert!(text.contains("\"schema\":\"sysunc-bench-serve/1\""));
    }

    #[test]
    fn summary_json_is_parseable_and_complete() {
        let r = LoadgenResult {
            requests: 3,
            ok: 2,
            failed: 1,
            elapsed: Duration::from_millis(10),
            latencies_micros: vec![100, 300],
        };
        let text = r.to_json(&LoadgenConfig::default()).expect("renders");
        let v = sysunc::prob::json::parse(&text).expect("parses");
        assert_eq!(v.get("ok").and_then(|j| j.as_u64()), Some(2));
        let lat = v.get("latency_micros").expect("nested");
        assert_eq!(lat.get("p50").and_then(|j| j.as_u64()), Some(100));
        assert_eq!(lat.get("p99").and_then(|j| j.as_u64()), Some(300));
        assert!(v.get("throughput_rps").and_then(|j| j.as_f64()).is_some());
    }

    #[test]
    fn config_requests_vary_by_seed_but_share_the_problem() {
        let c = LoadgenConfig::default();
        let a = c.request(0, 0);
        let b = c.request(1, 0);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.engine, b.engine);
    }
}
