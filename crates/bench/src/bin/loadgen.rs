//! Self-hosting load generator for the propagation server.
//!
//! ```text
//! loadgen [--clients N] [--requests N] [--engine NAME] [--model NAME]
//!         [--budget N] [--mode cold|cache-hot|batch|all]
//!         [--batch-size N] [--hot-seeds N]
//!         [--addr HOST:PORT] [--out FILE]
//! ```
//!
//! Without `--addr` the benchmark starts its own server on an
//! ephemeral loopback port, drives it, and shuts it down gracefully.
//! `--mode all` (the default) runs every mode sequentially against the
//! same server — cold first, so the baseline sees an empty cache — and
//! writes the `sysunc-bench-serve/2` suite document to `--out`
//! (default `BENCH_serve.json`). A single `--mode` writes that mode's
//! suite of one.

use std::net::SocketAddr;
use std::process::ExitCode;
use sysunc::ModelRegistry;
use sysunc_bench::loadgen::{run, suite_to_json, LoadMode, LoadgenConfig};
use sysunc_serve::{Server, ServerConfig};

struct Args {
    config: LoadgenConfig,
    modes: Vec<LoadMode>,
    addr: Option<SocketAddr>,
    out: String,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        config: LoadgenConfig::default(),
        modes: LoadMode::ALL.to_vec(),
        addr: None,
        out: "BENCH_serve.json".into(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--clients" => {
                parsed.config.clients =
                    value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" => {
                parsed.config.requests_per_client =
                    value("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?
            }
            "--engine" => parsed.config.engine = value("--engine")?,
            "--model" => parsed.config.model = value("--model")?,
            "--budget" => {
                parsed.config.budget =
                    value("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?
            }
            "--mode" => {
                let name = value("--mode")?;
                parsed.modes = match name.as_str() {
                    "all" => LoadMode::ALL.to_vec(),
                    other => vec![LoadMode::parse(other).ok_or_else(|| {
                        format!("--mode: unknown mode '{other}' (cold|cache-hot|batch|all)")
                    })?],
                };
            }
            "--batch-size" => {
                parsed.config.batch_size = value("--batch-size")?
                    .parse()
                    .map_err(|e| format!("--batch-size: {e}"))?
            }
            "--hot-seeds" => {
                parsed.config.hot_seeds = value("--hot-seeds")?
                    .parse()
                    .map_err(|e| format!("--hot-seeds: {e}"))?
            }
            "--addr" => {
                parsed.addr =
                    Some(value("--addr")?.parse().map_err(|e| format!("--addr: {e}"))?)
            }
            "--out" => parsed.out = value("--out")?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // Self-host unless pointed at an external server.
    let (addr, server) = match args.addr {
        Some(addr) => (addr, None),
        None => {
            let registry = match ModelRegistry::standard() {
                Ok(registry) => registry,
                Err(e) => {
                    eprintln!("loadgen: cannot build the model registry: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let config = ServerConfig {
                workers: args.config.clients.max(2),
                queue_capacity: args.config.clients.max(2) * 4,
                ..ServerConfig::default()
            };
            match Server::start(config, registry) {
                Ok(server) => (server.addr(), Some(server)),
                Err(e) => {
                    eprintln!("loadgen: cannot start server: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let mut entries = Vec::new();
    let mut failure = None;
    for &mode in &args.modes {
        let config = args.config.with_mode(mode);
        match run(addr, &config) {
            Ok(result) => {
                println!(
                    "loadgen[{}]: {} ok / {} failed, {:.1} jobs/s, p50 {} us, p99 {} us",
                    mode.name(),
                    result.ok,
                    result.failed,
                    result.throughput_rps(),
                    result.percentile_micros(50.0),
                    result.percentile_micros(99.0)
                );
                entries.push((config, result));
            }
            Err(e) => {
                failure = Some(format!("mode {} failed: {e}", mode.name()));
                break;
            }
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
    if let Some(msg) = failure {
        eprintln!("loadgen: {msg}");
        return ExitCode::FAILURE;
    }

    let summary = match suite_to_json(&entries) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("loadgen: cannot render summary: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&args.out, summary + "\n") {
        eprintln!("loadgen: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("loadgen: wrote {}", args.out);
    ExitCode::SUCCESS
}
