/root/repo/target/debug/deps/sysunc_sampling-539487ed0c683770.d: crates/sampling/src/lib.rs crates/sampling/src/design.rs crates/sampling/src/error.rs crates/sampling/src/propagate.rs crates/sampling/src/variance_reduction.rs

/root/repo/target/debug/deps/sysunc_sampling-539487ed0c683770: crates/sampling/src/lib.rs crates/sampling/src/design.rs crates/sampling/src/error.rs crates/sampling/src/propagate.rs crates/sampling/src/variance_reduction.rs

crates/sampling/src/lib.rs:
crates/sampling/src/design.rs:
crates/sampling/src/error.rs:
crates/sampling/src/propagate.rs:
crates/sampling/src/variance_reduction.rs:
